package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// errPoolClosed is returned by Do after Close; the HTTP layer maps it to
// 503 so a draining server refuses new ranking work cleanly.
var errPoolClosed = errors.New("serve: worker pool closed")

// PanicError is returned by workerPool.Do when the submitted fn
// panicked: the panic is recovered on the worker (one poisoned query
// must not kill the worker or the process) and surfaced to the
// submitting handler, which maps it to a 500.
type PanicError struct {
	// Value is the recovered panic value; Stack is the worker's stack at
	// recovery.
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: ranking panicked: %v", e.Value)
}

// workerPool bounds ranking concurrency to a fixed number of goroutines
// so an arbitrary number of HTTP connections shares the fastDistances
// hot loop without spawning a ranking goroutine per request. Submission
// is unbuffered: Do blocks until a worker is free or the request context
// expires, which gives natural backpressure under overload.
type workerPool struct {
	tasks chan poolTask
	quit  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

type poolTask struct {
	fn   func()
	done chan struct{}
}

// newWorkerPool starts n workers (n must be >= 1).
func newWorkerPool(n int) *workerPool {
	p := &workerPool{
		tasks: make(chan poolTask),
		quit:  make(chan struct{}),
	}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case t := <-p.tasks:
					t.fn()
					close(t.done)
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// Do runs fn on a pool worker and waits for it to finish. If no worker
// frees up before ctx is done, fn never runs and the context error is
// returned (the queueing timeout); cancellation after fn has started is
// fn's own responsibility (the ranking paths poll their context). A
// panicking fn is recovered on the worker — the worker survives to serve
// the next request — and Do returns the *PanicError.
func (p *workerPool) Do(ctx context.Context, fn func()) error {
	var pe *PanicError
	t := poolTask{done: make(chan struct{})}
	t.fn = func() {
		defer func() {
			if v := recover(); v != nil {
				pe = &PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		fn()
	}
	select {
	case p.tasks <- t:
	case <-ctx.Done():
		return ctx.Err()
	case <-p.quit:
		return errPoolClosed
	}
	<-t.done
	if pe != nil {
		return pe
	}
	return nil
}

// Close drains the pool: workers finish their in-flight task and exit,
// and Close returns once all have. Subsequent Do calls fail with
// errPoolClosed.
func (p *workerPool) Close() {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
}
