package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/ingest"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
)

// newIngestServer builds a server whose Edges sink is a live Ingester
// fine-tuning the served model, with the drain loop running.
func newIngestServer(t *testing.T, mutate func(*Config)) (*Server, *halk.Model, *kg.Dataset, *httptest.Server, *ingest.Ingester) {
	t.Helper()
	m, ds := testHalkModel(61)
	w, err := ingest.OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.New(ingest.Config{
		Model:    m,
		WAL:      w,
		Interval: 5 * time.Millisecond,
		FineTune: halk.FineTuneConfig{Seed: 42},
		// The unsharded server answers from the live model table, so
		// publication has nothing to swap — but the publish path still
		// runs so its counters and dirty-set bookkeeping are exercised.
		Publish: func([]kg.EntityID) error { return nil },
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	t.Cleanup(in.Close)
	cfg := Config{
		Model:     m,
		Entities:  ds.Train.Entities,
		Relations: ds.Train.Relations,
		Graph:     ds.Test,
		Edges:     in,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, m, ds, ts, in
}

func postEdges(t *testing.T, ts *httptest.Server, req edgesRequest) (edgesResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/v1/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/edges: %v", err)
	}
	defer res.Body.Close()
	var er edgesResponse
	if res.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(res.Body).Decode(&er); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return er, res.StatusCode
}

// nonEdgeSpec finds a (h, r, t) not present in the graph, with h having
// at least one r-successor so the 1p query p[r](h) is meaningful.
func nonEdgeSpec(t *testing.T, ds *kg.Dataset) (kg.EntityID, kg.RelationID, kg.EntityID) {
	t.Helper()
	g := ds.Train
	n := kg.EntityID(g.Entities.Len())
	for h := kg.EntityID(0); h < n; h++ {
		for r := kg.RelationID(0); int(r) < g.Relations.Len(); r++ {
			succ := g.Successors(h, r)
			if len(succ) == 0 {
				continue
			}
			have := make(map[kg.EntityID]struct{}, len(succ))
			for _, s := range succ {
				have[s] = struct{}{}
			}
			for cand := kg.EntityID(0); cand < n; cand++ {
				if _, ok := have[cand]; !ok && cand != h {
					return h, r, cand
				}
			}
		}
	}
	t.Fatal("no non-edge found")
	return 0, 0, 0
}

func TestEdgesEndpointValidation(t *testing.T) {
	// Without a sink the endpoint is disabled.
	_, _, _, bare := newTestServer(t, nil)
	if _, code := postEdges(t, bare, edgesRequest{Add: []edgeSpec{{H: "e0000", R: "r000", T: "e0001"}}}); code != http.StatusServiceUnavailable {
		t.Fatalf("no-sink status = %d, want 503", code)
	}

	_, _, ds, ts, _ := newIngestServer(t, nil)
	h := ds.Train.Entities.Name(0)
	rel := ds.Train.Relations.Name(0)
	tail := ds.Train.Entities.Name(1)

	res, err := http.Get(ts.URL + "/v1/edges")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", res.StatusCode)
	}

	if _, code := postEdges(t, ts, edgesRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", code)
	}
	for _, bad := range []edgesRequest{
		{Add: []edgeSpec{{H: "no-such-entity", R: rel, T: tail}}},
		{Add: []edgeSpec{{H: h, R: "no-such-relation", T: tail}}},
		{Remove: []edgeSpec{{H: h, R: rel, T: "no-such-entity"}}},
	} {
		if _, code := postEdges(t, ts, bad); code != http.StatusBadRequest {
			t.Fatalf("unknown-name batch %+v: status = %d, want 400", bad, code)
		}
	}
	// A batch of valid names is accepted and durably sequenced.
	er, code := postEdges(t, ts, edgesRequest{Add: []edgeSpec{{H: h, R: rel, T: tail}}})
	if code != http.StatusAccepted {
		t.Fatalf("valid batch status = %d, want 202", code)
	}
	if er.Seq == 0 || er.Added != 1 {
		t.Fatalf("ack = %+v, want seq>0 added=1", er)
	}
}

// TestBodySizeLimit is the satellite-2 regression: every mutating
// endpoint refuses an oversized body with 413 instead of buffering it.
func TestBodySizeLimit(t *testing.T) {
	_, _, ds, ts, _ := newIngestServer(t, func(c *Config) { c.MaxBodyBytes = 256 })

	// Valid JSON that is simply too large: padding inside a string field
	// keeps the request well-formed so only the limit can reject it.
	big := fmt.Sprintf(`{"query": %q}`, "p[r000](e0000) "+strings.Repeat("x", 4096))
	res, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("/v1/query oversized status = %d, want 413", res.StatusCode)
	}

	bigEdges := fmt.Sprintf(`{"add":[{"h":"e0000","r":"r000","t":"e0001"}],"remove":[{"h":%q,"r":"r000","t":"e0001"}]}`,
		strings.Repeat("y", 4096))
	res, err = http.Post(ts.URL+"/v1/edges", "application/json", strings.NewReader(bigEdges))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("/v1/edges oversized status = %d, want 413", res.StatusCode)
	}

	// An in-limit request on the same server still succeeds.
	if _, code := postQuery(t, ts, queryRequest{Query: dslFor(ds, 0, 0), K: 3}); code != http.StatusOK {
		t.Fatalf("in-limit query status = %d, want 200", code)
	}
}

// TestCacheNeverServedAcrossBump is the satellite-1 regression: once the
// entity table version bumps, a cached answer computed from the old
// table must be unreachable — the repeat query recomputes on the new
// table and only then becomes cacheable under the new version.
func TestCacheNeverServedAcrossBump(t *testing.T) {
	_, m, ds, ts := newTestServer(t, nil)
	req := queryRequest{Query: dslFor(ds, 3, 12), K: 5}

	if qr, code := postQuery(t, ts, req); code != http.StatusOK || qr.Cached {
		t.Fatalf("first query: code=%d cached=%v", code, qr.Cached)
	}
	if qr, _ := postQuery(t, ts, req); !qr.Cached {
		t.Fatal("repeat query not cached")
	}

	// Bump the entity version through every mutation path in turn; after
	// each bump the old cached answer must not be served.
	bump := func(name string, f func()) {
		t.Helper()
		before := m.EntityVersion()
		f()
		if m.EntityVersion() == before {
			t.Fatalf("%s did not bump the entity version", name)
		}
		qr, code := postQuery(t, ts, req)
		if code != http.StatusOK {
			t.Fatalf("%s: post-bump query status %d", name, code)
		}
		if qr.Cached {
			t.Fatalf("%s: cached answer served across a version bump", name)
		}
		if qr2, _ := postQuery(t, ts, req); !qr2.Cached {
			t.Fatalf("%s: post-bump repeat not cached under the new version", name)
		}
	}

	angles := append([]float64(nil), m.EntityAngles(12)...)
	for i := range angles {
		angles[i] += 0.01
	}
	bump("SetEntityAngles", func() {
		if err := m.SetEntityAngles(12, angles); err != nil {
			t.Fatal(err)
		}
	})
	for i := range angles {
		angles[i] += 0.01
	}
	bump("SetEntityAnglesBatch", func() {
		if err := m.SetEntityAnglesBatch([]halk.EntityUpdate{{E: 12, Angles: angles}}); err != nil {
			t.Fatal(err)
		}
	})
	h, r, tail := nonEdgeSpec(t, ds)
	bump("FineTuneEdges", func() {
		if _, err := m.FineTuneEdges([]kg.Triple{{H: h, R: r, T: tail}}, nil, halk.FineTuneConfig{Seed: 9}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestEdgesEndToEndDelta is the ISSUE acceptance test (parts a and b):
// edges submitted over HTTP are durably logged, fine-tuned in the
// background, and published such that (a) untouched embeddings are
// byte-identical and (b) post-publish answers reflect the fine-tuned
// table with zero stale cache hits.
func TestEdgesEndToEndDelta(t *testing.T) {
	_, m, ds, ts, _ := newIngestServer(t, nil)
	h, r, tail := nonEdgeSpec(t, ds)
	name := func(e kg.EntityID) string { return ds.Train.Entities.Name(int32(e)) }
	req := queryRequest{Query: dslFor(ds, r, h), K: 5}

	// Warm the cache on the pre-update table.
	if qr, code := postQuery(t, ts, req); code != http.StatusOK || qr.Cached {
		t.Fatalf("warm query: code=%d cached=%v", code, qr.Cached)
	}
	if qr, _ := postQuery(t, ts, req); !qr.Cached {
		t.Fatal("warm repeat not cached")
	}

	// Snapshot every embedding row and the query's distance to the new
	// tail before the update.
	numEnt := ds.Train.Entities.Len()
	before := make([][]float64, numEnt)
	for e := 0; e < numEnt; e++ {
		before[e] = append([]float64(nil), m.EntityAngles(kg.EntityID(e))...)
	}
	q, err := query.Parse(req.Query, ds.Train.Entities, ds.Train.Relations)
	if err != nil {
		t.Fatal(err)
	}
	distBefore := m.Distances(q)[tail]
	v0 := m.EntityVersion()

	er, code := postEdges(t, ts, edgesRequest{Add: []edgeSpec{{H: name(h), R: ds.Train.Relations.Name(int32(r)), T: name(tail)}}})
	if code != http.StatusAccepted {
		t.Fatalf("edges status = %d, want 202", code)
	}
	if er.Seq == 0 {
		t.Fatalf("ack seq = 0")
	}

	// Wait for the background drain to apply and bump the version.
	deadline := time.Now().Add(10 * time.Second)
	for m.EntityVersion() == v0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the ingest drain to apply")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// (a) Untouched embeddings are byte-identical: only the dirty set —
	// head, tail, and the bounded negative sample — may move.
	changed := 0
	for e := 0; e < numEnt; e++ {
		row := m.EntityAngles(kg.EntityID(e))
		same := true
		for i := range row {
			if row[i] != before[e][i] {
				same = false
				break
			}
		}
		if !same {
			changed++
		}
	}
	maxDirty := 2 + 8 // head + tail + default NegSamples
	if changed == 0 || changed > maxDirty {
		t.Fatalf("changed rows = %d, want in [1, %d] (dirty-set fine-tune)", changed, maxDirty)
	}

	// The fine-tune pulled the asserted tail toward the query.
	if distAfter := m.Distances(q)[tail]; distAfter >= distBefore {
		t.Fatalf("distance to asserted tail did not shrink: %.6f -> %.6f", distBefore, distAfter)
	}

	// (b) Zero stale cache hits: the post-publish query recomputes on the
	// new table and matches the live model exactly.
	qr, code := postQuery(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("post-publish query status = %d", code)
	}
	if qr.Cached {
		t.Fatal("stale cached answer served after the delta publish")
	}
	want := m.TopK(q, 5)
	if len(qr.Answers) != len(want) {
		t.Fatalf("got %d answers, want %d", len(qr.Answers), len(want))
	}
	for i, a := range qr.Answers {
		if a.ID != want[i] {
			t.Fatalf("answer %d: id %d, want %d (stale table?)", i, a.ID, want[i])
		}
	}
	if qr2, _ := postQuery(t, ts, req); !qr2.Cached {
		t.Fatal("repeat under the new version not cached")
	}

	// The ingest stats surface the applied batch.
	st := getStats(t, ts)
	if st.Ingest == nil {
		t.Fatal("stats missing ingest section")
	}
	if st.Ingest.AppliedEdges == 0 || st.Ingest.Publishes == 0 {
		t.Fatalf("ingest stats = %+v, want applied edges and publishes > 0", st.Ingest)
	}
}
