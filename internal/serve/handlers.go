package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/ingest"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
	"github.com/halk-kg/halk/internal/sparql"
)

// queryRequest is the POST /v1/query body. Exactly one of SPARQL, Query
// (prefix DSL) or Structure must be set.
type queryRequest struct {
	// SPARQL is a SPARQL query compiled through the adaptor of Sec. IV-F.
	SPARQL string `json:"sparql,omitempty"`
	// Query is a query in the prefix DSL, e.g. "i(p[r003](e0007), p[r010](e0042))".
	Query string `json:"query,omitempty"`
	// Structure samples one query of the named benchmark structure
	// (e.g. "pi") from the server's sampling graph.
	Structure string `json:"structure,omitempty"`
	// Seed drives structure sampling; defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// K is the number of answers to return; defaults to the server's
	// DefaultK, capped at MaxK.
	K int `json:"k,omitempty"`
	// Mode selects "exact" (full ranking, default) or "approx"
	// (ANN-pruned candidate pool).
	Mode string `json:"mode,omitempty"`
	// TimeoutMS bounds the request end to end (queue wait + ranking);
	// defaults to the server's DefaultTimeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Answer is one ranked answer entity. Distance is the model's
// entity-to-query distance (lower = more likely); approx mode omits it,
// since the ANN path reports only the ranking.
type Answer struct {
	ID       kg.EntityID `json:"id"`
	Entity   string      `json:"entity"`
	Distance *float64    `json:"distance,omitempty"`
}

// queryResponse is the POST /v1/query reply.
type queryResponse struct {
	Query     string  `json:"query"`
	Canonical string  `json:"canonical"`
	Structure string  `json:"structure,omitempty"`
	Mode      string  `json:"mode"`
	K         int     `json:"k"`
	Cached    bool    `json:"cached"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Partial marks a sharded response in which one or more shards
	// missed their deadline: Answers covers only the shards listed in
	// ShardsAnswered. Partial responses are never cached.
	Partial        bool     `json:"partial,omitempty"`
	ShardsAnswered []int    `json:"shards_answered,omitempty"`
	Answers        []Answer `json:"answers"`
	// Debug carries the per-stage pipeline trace when the request asked
	// for it with ?debug=trace.
	Debug *debugInfo `json:"debug,omitempty"`
}

// debugInfo is the ?debug=trace response section: the stage timings
// recorded up to response assembly (the final JSON encode is observed
// into the halk_stage_duration_ms histogram and the slow-query log, but
// cannot appear in the payload it produces).
type debugInfo struct {
	Trace   []obs.StageTiming `json:"trace"`
	TotalMs float64           `json:"total_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Fault-injection stages: the seam names Config.Faults fires at. The
// shard value passed to Fire is always 0 — these are per-request seams,
// not per-shard ones (shard-level faults go through shard.Options.ScanErr).
const (
	// FaultStageCacheGet fires on every answer-cache lookup. An injected
	// error degrades to a cache miss; an injected panic surfaces the
	// handler recovery path.
	FaultStageCacheGet = "serve.cache.get"
	// FaultStageCachePut fires before storing an answer; an injected
	// error skips the store (the response is still served).
	FaultStageCachePut = "serve.cache.put"
	// FaultStageRank fires on a pool worker before ranking; an injected
	// panic exercises the worker recovery path.
	FaultStageRank = "serve.rank"
)

// WriteJSON encodes v as the response body with the given status.
// Exported for the cluster node frontend, which shares the serve
// stack's response conventions.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := obs.NewTrace()
	status := http.StatusOK
	defer func() {
		s.metrics.observe("/v1/query", time.Since(start), status >= 400)
	}()
	fail := func(code int, format string, args ...any) {
		status = code
		WriteJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
	}

	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "POST required")
		return
	}
	debugTrace := r.URL.Query().Get("debug") == "trace"
	tr.Begin(obs.StageParse)
	var req queryRequest
	if code, err := s.decodeBody(w, r, &req); err != nil {
		fail(code, "%v", err)
		return
	}

	root, err := s.compile(&req)
	if err != nil {
		fail(http.StatusBadRequest, "%v", err)
		return
	}
	tr.Begin(obs.StageCanonicalize)

	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	mode := req.Mode
	if mode == "" {
		mode = "exact"
	}
	switch mode {
	case "exact":
	case "approx":
		if s.approxAnswerer() == nil {
			fail(http.StatusBadRequest, "approx mode is not enabled on this server")
			return
		}
	default:
		fail(http.StatusBadRequest, "unknown mode %q (want \"exact\" or \"approx\")", mode)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	canonical := query.CanonicalKey(root)
	cacheKey := fmt.Sprintf("v%d|%s|%s|k=%d", s.answerVersion(mode), canonical, mode, k)
	resp := queryResponse{
		Query:     root.String(),
		Canonical: canonical,
		Structure: req.Structure,
		Mode:      mode,
		K:         k,
	}

	tr.Begin(obs.StageCacheLookup)
	var cached []Answer
	var ok bool
	if err := s.cfg.Faults.Fire(FaultStageCacheGet, 0); err == nil {
		// An injected cache-get error degrades to a miss: the request is
		// answered by ranking, never failed by its cache.
		cached, ok = s.cache.Get(cacheKey)
	}
	tr.End()
	if ok {
		resp.Cached = true
		resp.Answers = cached
		s.finish(w, &resp, tr, debugTrace)
		return
	}

	// svcMs is the ranking service time this request observed, fed back
	// into the admission gate's EWMA on release (0 = request never ranked).
	var svcMs float64
	if s.gate != nil {
		release, retryAfter, admitted := s.gate.admit(ctx)
		if !admitted {
			secs := int(retryAfter/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			fail(http.StatusTooManyRequests,
				"expected queue wait %v exceeds the request deadline; retry later", retryAfter.Round(time.Millisecond))
			return
		}
		defer func() { release(svcMs) }()
	}

	// The trace rides the context so the ranking layers (worker pool,
	// sharded engine, full scan) annotate their own stages onto it.
	ctx = obs.NewContext(ctx, tr)
	tr.Begin(obs.StageQueueWait)
	var answers []Answer
	var sharded *shard.Result
	var rankErr error
	poolErr := s.pool.Do(ctx, func() {
		tr.End() // a worker picked the task up: queue wait is over
		svcStart := time.Now()
		answers, sharded, rankErr = s.rank(ctx, root, k, mode)
		svcMs = float64(time.Since(svcStart)) / float64(time.Millisecond)
	})
	if err := firstErr(poolErr, rankErr); err != nil {
		var pe *PanicError
		switch {
		case errors.As(err, &pe):
			// The worker recovered the panic and survives; this request is
			// the only casualty.
			s.metrics.workerPanics.Inc()
			s.cfg.PanicLog.Printf("serve: recovered panic on ranking worker: %v\n%s", pe.Value, pe.Stack)
			fail(http.StatusInternalServerError, "internal error while ranking")
		case errors.Is(err, errPoolClosed):
			fail(http.StatusServiceUnavailable, "server is draining")
		case errors.Is(err, shard.ErrAllShardsSkipped):
			fail(http.StatusGatewayTimeout, "every shard missed its deadline")
		case errors.Is(err, context.DeadlineExceeded):
			fail(http.StatusGatewayTimeout, "query exceeded its %v deadline", timeout)
		default:
			fail(http.StatusServiceUnavailable, "%v", err)
		}
		return
	}

	if sharded != nil && sharded.Partial {
		// A partial ranking is a degraded answer, valid for this response
		// only: caching it would keep serving the degraded list even once
		// the slow shard recovers. Breaker-skipped shards and lost hedges
		// surface as Partial too, so results produced under an open
		// breaker are likewise never cached.
		resp.Partial = true
		resp.ShardsAnswered = sharded.Answered
	} else if err := s.cfg.Faults.Fire(FaultStageCachePut, 0); err == nil {
		// An injected cache-put error skips the store; the response is
		// still served.
		s.cache.Put(cacheKey, answers)
	}
	resp.Answers = answers
	s.finish(w, &resp, tr, debugTrace)
}

// finish stamps the elapsed time (and, on request, the stage trace)
// onto resp, encodes it, folds the trace into the per-stage latency
// histograms, and emits the slow-query log line when the request blew
// the threshold.
func (s *Server) finish(w http.ResponseWriter, resp *queryResponse, tr *obs.Trace, debugTrace bool) {
	resp.ElapsedMs = tr.TotalMs()
	if debugTrace {
		resp.Debug = &debugInfo{Trace: tr.Stages(), TotalMs: resp.ElapsedMs}
	}
	encStart := time.Now()
	WriteJSON(w, http.StatusOK, resp)
	tr.Observe(obs.StageEncode, time.Since(encStart))
	s.metrics.observeTrace(tr)
	if thr := s.cfg.SlowQuery; thr > 0 && resp.ElapsedMs >= float64(thr)/float64(time.Millisecond) {
		s.metrics.slow.Inc()
		s.cfg.SlowLog.Printf("serve: slow query (%.1fms >= %v): %s mode=%s k=%d partial=%v trace: %s",
			resp.ElapsedMs, thr, resp.Canonical, resp.Mode, resp.K, resp.Partial, tr)
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// compile turns the request into a query computation DAG through
// whichever of the three input forms it carries.
func (s *Server) compile(req *queryRequest) (*query.Node, error) {
	forms := 0
	for _, set := range []bool{req.SPARQL != "", req.Query != "", req.Structure != ""} {
		if set {
			forms++
		}
	}
	if forms != 1 {
		return nil, fmt.Errorf("exactly one of \"sparql\", \"query\" or \"structure\" must be set")
	}
	switch {
	case req.SPARQL != "":
		pq, err := sparql.Parse(req.SPARQL)
		if err != nil {
			return nil, err
		}
		return s.adaptor.Compile(pq)
	case req.Query != "":
		return query.Parse(req.Query, s.cfg.Entities, s.cfg.Relations)
	default:
		if s.cfg.Graph == nil {
			return nil, fmt.Errorf("structure sampling is not enabled on this server")
		}
		if !query.HasStructure(req.Structure) {
			return nil, fmt.Errorf("unknown structure %q; known: %v", req.Structure, query.StructureNames())
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		sampler := query.NewSampler(s.cfg.Graph, rand.New(rand.NewSource(seed)))
		root, ok := sampler.Sample(req.Structure)
		if !ok {
			return nil, fmt.Errorf("could not sample a %q query from the serving graph", req.Structure)
		}
		return root, nil
	}
}

// answerVersion is the entity-table version the given mode answers
// from, used to namespace cache keys: updating the embeddings bumps the
// version, so stale cached answers become unreachable instead of being
// served. Sharded exact answers come from the ranker's snapshot; all
// other paths read the live model table.
func (s *Server) answerVersion(mode string) uint64 {
	if mode == "exact" && s.cfg.Ranker != nil {
		return s.cfg.Ranker.SnapshotVersion()
	}
	if ev, ok := s.cfg.Model.(EntityVersioner); ok {
		return ev.EntityVersion()
	}
	return 0
}

// rank runs on a pool worker: one query embedding plus one entity
// ranking — sharded scatter-gather, single-threaded exact, or
// ANN-pruned. The *shard.Result is non-nil only on the sharded path.
func (s *Server) rank(ctx context.Context, root *query.Node, k int, mode string) ([]Answer, *shard.Result, error) {
	tr := obs.FromContext(ctx)
	if err := s.cfg.Faults.Fire(FaultStageRank, 0); err != nil {
		return nil, nil, err
	}
	if mode == "approx" {
		a := s.approxAnswerer()
		if a == nil {
			// The index was swapped out between the mode check and this
			// worker picking the request up.
			return nil, nil, fmt.Errorf("approx mode is not enabled on this server")
		}
		begin := time.Now()
		ids := a.TopKApprox(root, k)
		s.metrics.observePool(a.PoolSize(root))
		answers := make([]Answer, len(ids))
		for i, e := range ids {
			answers[i] = Answer{ID: e, Entity: s.cfg.Entities.Name(int32(e))}
		}
		tr.Observe(obs.StageApproxTopK, time.Since(begin))
		return answers, nil, nil
	}

	if s.cfg.Ranker != nil {
		// The sharded path traces its own prepare/scatter/merge stages
		// through the context; only the answer labelling is ours, counted
		// toward the encode stage.
		res, err := s.cfg.Ranker.RankTopK(ctx, root, k)
		if err != nil {
			return nil, nil, err
		}
		begin := time.Now()
		answers := make([]Answer, len(res.IDs))
		for i, e := range res.IDs {
			dist := res.Dists[i]
			answers[i] = Answer{ID: e, Entity: s.cfg.Entities.Name(int32(e)), Distance: &dist}
		}
		tr.Observe(obs.StageEncode, time.Since(begin))
		return answers, res, nil
	}

	begin := time.Now()
	var d []float64
	var err error
	if cr, ok := s.cfg.Model.(ContextRanker); ok {
		d, err = cr.DistancesContext(ctx, root)
	} else {
		d = s.cfg.Model.Distances(root)
	}
	if err != nil {
		return nil, nil, err
	}
	answers := s.topK(d, k)
	tr.Observe(obs.StageRankScan, time.Since(begin))
	return answers, nil, nil
}

// topK selects the k lowest-distance entities, most likely answers
// first, with the same tie-breaking as halk.Model.TopK (first index
// wins), so served answers match the offline CLI exactly.
func (s *Server) topK(d []float64, k int) []Answer {
	if k > len(d) {
		k = len(d)
	}
	idx := make([]kg.EntityID, len(d))
	for i := range idx {
		idx[i] = kg.EntityID(i)
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(idx); j++ {
			if d[idx[j]] < d[idx[min]] {
				min = j
			}
		}
		idx[i], idx[min] = idx[min], idx[i]
	}
	answers := make([]Answer, k)
	for i := 0; i < k; i++ {
		dist := d[idx[i]]
		answers[i] = Answer{
			ID:       idx[i],
			Entity:   s.cfg.Entities.Name(int32(idx[i])),
			Distance: &dist,
		}
	}
	return answers
}

// healthzResponse is the GET /v1/healthz readiness report: enough for a
// load balancer (or the cluster router's node-discovery loop) to decide
// whether this process can answer, and at which entity-table version.
// The cluster scan nodes answer the same shape from their own handler,
// so one prober serves both kinds of backend.
type healthzResponse struct {
	Status   string `json:"status"`
	Model    string `json:"model"`
	Entities int    `json:"entities"`
	// EntityVersion is the version exact answers are currently served
	// from (the ranker's published snapshot when one is configured, the
	// live model table otherwise). The router compares it across nodes
	// to detect checkpoint-rollout skew.
	EntityVersion uint64 `json:"entity_version"`
	// Shards is the exact path's scatter width (0 = unsharded full scan).
	Shards int `json:"shards,omitempty"`
	// Checkpoint provenance, when the process wired a ckpt.Status.
	CkptLoaded bool   `json:"ckpt_loaded"`
	CkptStep   int    `json:"ckpt_step,omitempty"`
	CkptPath   string `json:"ckpt_path,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	resp := healthzResponse{
		Status:        "ok",
		Model:         s.cfg.Model.Name(),
		Entities:      s.cfg.Entities.Len(),
		EntityVersion: s.answerVersion("exact"),
	}
	if s.cfg.Ranker != nil {
		resp.Shards = s.cfg.Ranker.NumShards()
	}
	if s.cfg.Ckpt != nil {
		snap := s.cfg.Ckpt.Snapshot()
		resp.CkptLoaded = snap.Path != ""
		resp.CkptStep = snap.Step
		resp.CkptPath = snap.Path
	} else {
		// No checkpoint lifecycle wired: the model was constructed
		// in-process (tests, library embedding) and is ready by
		// definition.
		resp.CkptLoaded = true
	}
	WriteJSON(w, http.StatusOK, resp)
	s.metrics.observe("/v1/healthz", time.Since(start), false)
}

// statsResponse is the GET /v1/stats reply.
type statsResponse struct {
	Model     string                      `json:"model"`
	Entities  int                         `json:"entities"`
	UptimeS   float64                     `json:"uptime_s"`
	Workers   int                         `json:"workers"`
	Endpoints map[string]endpointSnapshot `json:"endpoints"`
	Cache     cacheStats                  `json:"cache"`
	ApproxOn  bool                        `json:"approx_enabled"`
	Pool      poolSnapshot                `json:"candidate_pool"`
	// NumShards and Shards describe the sharded ranking engine when one
	// is configured: shard count, ID ranges, scan counts, deadline skips,
	// circuit-breaker and hedging counters, and scan-latency summaries
	// per shard.
	NumShards int                `json:"num_shards,omitempty"`
	Shards    []shard.ShardStats `json:"shards,omitempty"`
	// Ranges describes the replica topology when the Ranker routes to
	// replicated entity ranges (cluster router mode): per range, the
	// replica set, current primary, failover/primary-flip counters and
	// per-replica breaker states. TopologyVersion is the membership
	// snapshot version, bumped on every join/leave/reload.
	Ranges          []RangeReplicaStats `json:"ranges,omitempty"`
	TopologyVersion uint64              `json:"topology_version,omitempty"`
	// Admission describes the load-shedding gate when one is configured.
	Admission *admissionSnapshot `json:"admission,omitempty"`
	// Checkpoint reports the served checkpoint's freshness when the
	// process wired a ckpt.Status: file, training step, load time, and
	// hot-reload outcome counters.
	Checkpoint *ckpt.StatusSnapshot `json:"checkpoint,omitempty"`
	// Ingest reports live-edge ingest progress when an EdgeSink is wired:
	// WAL backlog, applied edges, fine-tune steps, and publish outcomes.
	Ingest *ingest.Stats `json:"ingest,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	endpoints, pool, uptime := s.metrics.snapshot()
	resp := statsResponse{
		Model:     s.cfg.Model.Name(),
		Entities:  s.cfg.Entities.Len(),
		UptimeS:   uptime,
		Workers:   s.workers,
		Endpoints: endpoints,
		Cache:     s.cache.stats(),
		ApproxOn:  s.approxAnswerer() != nil,
		Pool:      pool,
	}
	if s.cfg.Ckpt != nil {
		snap := s.cfg.Ckpt.Snapshot()
		resp.Checkpoint = &snap
	}
	if s.cfg.Ranker != nil {
		resp.NumShards = s.cfg.Ranker.NumShards()
		resp.Shards = s.cfg.Ranker.ShardStats()
		if rs, ok := s.cfg.Ranker.(ReplicaStatser); ok {
			resp.Ranges = rs.ReplicaStats()
		}
		if tm, ok := s.cfg.Ranker.(TopologyManager); ok {
			resp.TopologyVersion = tm.TopologyVersion()
		}
	}
	if s.gate != nil {
		resp.Admission = s.gate.snapshot()
	}
	if s.cfg.Edges != nil {
		st := s.cfg.Edges.Stats()
		resp.Ingest = &st
	}
	WriteJSON(w, http.StatusOK, resp)
	s.metrics.observe("/v1/stats", time.Since(start), false)
}
