package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

// stubStatusErr mimics cluster's membership errors: an error carrying
// its HTTP status, surfaced through the StatusCoder upgrade.
type stubStatusErr struct {
	msg  string
	code int
}

func (e *stubStatusErr) Error() string   { return e.msg }
func (e *stubStatusErr) HTTPStatus() int { return e.code }

// stubTopology is a Ranker that also manages membership, scripting the
// cluster router's join/leave surface for handler tests.
type stubTopology struct {
	version  uint64
	joins    []string
	leaves   []string
	joinErr  error
	leaveErr error
}

func (s *stubTopology) RankTopK(ctx context.Context, n *query.Node, k int) (*shard.Result, error) {
	return &shard.Result{Version: 1}, nil
}
func (s *stubTopology) SnapshotVersion() uint64        { return 1 }
func (s *stubTopology) NumShards() int                 { return 2 }
func (s *stubTopology) ShardStats() []shard.ShardStats { return nil }

func (s *stubTopology) Join(ri int, addr string) error {
	if s.joinErr != nil {
		return s.joinErr
	}
	s.joins = append(s.joins, fmt.Sprintf("%d/%s", ri, addr))
	s.version++
	return nil
}

func (s *stubTopology) Leave(addr string) error {
	if s.leaveErr != nil {
		return s.leaveErr
	}
	s.leaves = append(s.leaves, addr)
	s.version++
	return nil
}

func (s *stubTopology) TopologyVersion() uint64 { return s.version }

// postTopology posts a raw JSON body to a topology endpoint and decodes
// whichever of the ack/error shapes came back.
func postTopology(t *testing.T, ts *httptest.Server, path, body string) (topologyResponse, errorResponse, int) {
	t.Helper()
	res, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer res.Body.Close()
	var ack topologyResponse
	var fail errorResponse
	if res.StatusCode < 400 {
		if err := json.NewDecoder(res.Body).Decode(&ack); err != nil {
			t.Fatalf("decode %s ack: %v", path, err)
		}
	} else {
		if err := json.NewDecoder(res.Body).Decode(&fail); err != nil {
			t.Fatalf("decode %s error: %v", path, err)
		}
	}
	return ack, fail, res.StatusCode
}

// TestTopologyJoinLeave drives the happy path: join acks 202 with
// status "probation" (admission is asynchronous), leave acks 200 with
// "left", and both carry the bumped topology version that /v1/stats
// then reports.
func TestTopologyJoinLeave(t *testing.T) {
	stub := &stubTopology{version: 3}
	_, _, _, ts := newTestServer(t, func(cfg *Config) { cfg.Ranker = stub })

	ack, _, code := postTopology(t, ts, "/v1/topology/join", `{"range": 1, "node": "h:9002"}`)
	if code != http.StatusAccepted {
		t.Fatalf("join status = %d, want 202", code)
	}
	if ack.Status != "probation" || ack.Node != "h:9002" || ack.Range == nil || *ack.Range != 1 {
		t.Fatalf("join ack = %+v, want probation h:9002 range 1", ack)
	}
	if ack.TopologyVersion != 4 {
		t.Fatalf("join ack version = %d, want 4", ack.TopologyVersion)
	}
	if len(stub.joins) != 1 || stub.joins[0] != "1/h:9002" {
		t.Fatalf("manager saw joins %v", stub.joins)
	}

	ack, _, code = postTopology(t, ts, "/v1/topology/leave", `{"node": "h:9002"}`)
	if code != http.StatusOK {
		t.Fatalf("leave status = %d, want 200", code)
	}
	if ack.Status != "left" || ack.Node != "h:9002" {
		t.Fatalf("leave ack = %+v, want left h:9002", ack)
	}
	if ack.TopologyVersion != 5 {
		t.Fatalf("leave ack version = %d, want 5", ack.TopologyVersion)
	}

	stats := getStats(t, ts)
	if stats.TopologyVersion != 5 {
		t.Fatalf("stats.TopologyVersion = %d, want 5", stats.TopologyVersion)
	}

	// Range 0 is a valid range: the join ack must still carry it.
	ack, _, code = postTopology(t, ts, "/v1/topology/join", `{"range": 0, "node": "h:9003"}`)
	if code != http.StatusAccepted || ack.Range == nil || *ack.Range != 0 {
		t.Fatalf("join to range 0 ack = %+v (status %d), want explicit range 0", ack, code)
	}
}

// TestTopologyRejectsBadRequests pins the refusal surface: non-POST,
// bodies missing node or range, and malformed JSON all answer 4xx
// without reaching the manager.
func TestTopologyRejectsBadRequests(t *testing.T) {
	stub := &stubTopology{}
	_, _, _, ts := newTestServer(t, func(cfg *Config) { cfg.Ranker = stub })

	res, err := http.Get(ts.URL + "/v1/topology/join")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET join status = %d, want 405", res.StatusCode)
	}

	for _, tc := range []struct {
		path, body string
	}{
		{"/v1/topology/join", `{"range": 0}`},    // no node
		{"/v1/topology/join", `{"node": "h:1"}`}, // no range
		{"/v1/topology/join", `{not json`},       // malformed
		{"/v1/topology/leave", `{}`},             // no node
		{"/v1/topology/leave", `{not json`},      // malformed
	} {
		_, fail, code := postTopology(t, ts, tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Fatalf("POST %s %q status = %d, want 400", tc.path, tc.body, code)
		}
		if fail.Error == "" {
			t.Fatalf("POST %s %q: empty error body", tc.path, tc.body)
		}
	}
	if len(stub.joins)+len(stub.leaves) != 0 {
		t.Fatalf("rejected requests reached the manager: %v %v", stub.joins, stub.leaves)
	}
}

// TestTopologyErrorStatusMapping asserts membership errors surface with
// the status their StatusCoder carries — and plain errors fall back to
// 400 — so operators can tell "no such replica" from "would empty the
// range" without parsing messages.
func TestTopologyErrorStatusMapping(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"unknown replica", &stubStatusErr{"cluster: unknown replica", 404}, http.StatusNotFound},
		{"duplicate replica", &stubStatusErr{"cluster: duplicate replica", 409}, http.StatusConflict},
		{"plain error", fmt.Errorf("cluster: something else"), http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stub := &stubTopology{joinErr: tc.err, leaveErr: tc.err}
			_, _, _, ts := newTestServer(t, func(cfg *Config) { cfg.Ranker = stub })
			_, fail, code := postTopology(t, ts, "/v1/topology/join", `{"range": 0, "node": "h:1"}`)
			if code != tc.want {
				t.Fatalf("join status = %d, want %d", code, tc.want)
			}
			if fail.Error != tc.err.Error() {
				t.Fatalf("join error = %q, want %q", fail.Error, tc.err.Error())
			}
			if _, _, code := postTopology(t, ts, "/v1/topology/leave", `{"node": "h:1"}`); code != tc.want {
				t.Fatalf("leave status = %d, want %d", code, tc.want)
			}
		})
	}
}

// TestTopologyStaticRanker: a server ranking through something that
// does not manage membership (the in-process engine) answers 501, and
// /v1/stats omits the topology version rather than reporting a fake 0.
func TestTopologyStaticRanker(t *testing.T) {
	_, _, _, ts := newTestServer(t, nil) // default in-process engine
	for _, path := range []string{"/v1/topology/join", "/v1/topology/leave"} {
		_, fail, code := postTopology(t, ts, path, `{"range": 0, "node": "h:1"}`)
		if code != http.StatusNotImplemented {
			t.Fatalf("POST %s status = %d, want 501", path, code)
		}
		if fail.Error == "" {
			t.Fatalf("POST %s: empty error body", path)
		}
	}
	if stats := getStats(t, ts); stats.TopologyVersion != 0 {
		t.Fatalf("static stats.TopologyVersion = %d, want 0", stats.TopologyVersion)
	}
}
