package serve

import (
	"fmt"
	"sync"
	"testing"

	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
)

func ans(ids ...int) []Answer {
	out := make([]Answer, len(ids))
	for i, id := range ids {
		out[i] = Answer{ID: kg.EntityID(id)}
	}
	return out
}

func TestLRUEvictsOldest(t *testing.T) {
	c := newAnswerCache(2, obs.NewRegistry())
	c.Put("a", ans(1))
	c.Put("b", ans(2))
	c.Put("c", ans(3)) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("a survived eviction")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b evicted prematurely")
	}
	s := c.stats()
	if s.Evictions != 1 || s.Size != 2 {
		t.Errorf("stats = %+v, want 1 eviction, size 2", s)
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := newAnswerCache(2, obs.NewRegistry())
	c.Put("a", ans(1))
	c.Put("b", ans(2))
	c.Get("a")         // a becomes most recent
	c.Put("c", ans(3)) // evicts b, not a
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("least recently used entry survived")
	}
}

func TestLRUCountersAndFlush(t *testing.T) {
	c := newAnswerCache(4, obs.NewRegistry())
	c.Put("k", ans(1, 2))
	c.Get("k")
	c.Get("nope")
	s := c.stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", s.HitRate)
	}
	c.Flush()
	if _, ok := c.Get("k"); ok {
		t.Error("entry survived Flush")
	}
	if got := c.stats(); got.Size != 0 || got.Hits != 1 {
		t.Errorf("post-flush stats = %+v; size must reset, counters persist", got)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newAnswerCache(0, obs.NewRegistry())
	c.Put("k", ans(1))
	if _, ok := c.Get("k"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestLRUPutOverwrites(t *testing.T) {
	c := newAnswerCache(2, obs.NewRegistry())
	c.Put("k", ans(1))
	c.Put("k", ans(2, 3))
	got, ok := c.Get("k")
	if !ok || len(got) != 2 {
		t.Fatalf("overwrite lost: %v %v", got, ok)
	}
	if c.stats().Size != 1 {
		t.Error("duplicate key grew the cache")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newAnswerCache(16, obs.NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w+i)%32)
				if i%3 == 0 {
					c.Put(key, ans(i))
				} else {
					c.Get(key)
				}
			}
		}(w)
	}
	wg.Wait()
	if s := c.stats(); s.Size > 16 {
		t.Errorf("cache overgrew: %d entries", s.Size)
	}
}
