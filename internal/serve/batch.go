package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

// BatchRanker is the optional batched extension of Ranker: when
// Config.Ranker implements it, /v1/batch ranks all cache-missing
// queries of a request through one RankBatch call, so every shard
// sweeps its entity blocks once for the whole batch instead of once per
// query. halk.ShardedRanker implements it; rankers that do not (for
// example the cluster router, whose backends are remote) are served by
// a per-query RankTopK loop with identical results.
type BatchRanker interface {
	Ranker
	// RankBatch ranks roots[i] at ks[i] for every i in one shard
	// gather. Each returned Result must be bit-identical to
	// RankTopK(ctx, roots[i], ks[i]) on the same snapshot.
	RankBatch(ctx context.Context, roots []*query.Node, ks []int) ([]*shard.Result, error)
}

// batchItem is one query of a POST /v1/batch request. Exactly one of
// SPARQL, Query or Structure must be set, as in /v1/query.
type batchItem struct {
	SPARQL    string `json:"sparql,omitempty"`
	Query     string `json:"query,omitempty"`
	Structure string `json:"structure,omitempty"`
	// Seed drives structure sampling; defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// K overrides the batch-level k for this query only.
	K int `json:"k,omitempty"`
}

// batchRequest is the POST /v1/batch body. The batch always ranks in
// exact mode — batching is a property of the blocked exact-scan kernel;
// approx queries gain nothing from it and go through /v1/query.
type batchRequest struct {
	Queries []batchItem `json:"queries"`
	// K is the answer count for items that set no k of their own;
	// defaults to the server's DefaultK, capped at MaxK.
	K int `json:"k,omitempty"`
	// TimeoutMS bounds the whole batch end to end (queue wait + ranking);
	// defaults to the server's DefaultTimeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// batchResult is one query's slot in the POST /v1/batch reply, in
// request order. Partial-result semantics are per query: a shard
// deadline miss degrades only the queries ranked in that gather, and a
// partial slot is never cached.
type batchResult struct {
	Query          string   `json:"query"`
	Canonical      string   `json:"canonical"`
	Structure      string   `json:"structure,omitempty"`
	K              int      `json:"k"`
	Cached         bool     `json:"cached"`
	Partial        bool     `json:"partial,omitempty"`
	ShardsAnswered []int    `json:"shards_answered,omitempty"`
	Answers        []Answer `json:"answers"`
}

// batchResponse is the POST /v1/batch reply.
type batchResponse struct {
	Count     int           `json:"count"`
	CacheHits int           `json:"cache_hits"`
	ElapsedMs float64       `json:"elapsed_ms"`
	Results   []batchResult `json:"results"`
	Debug     *debugInfo    `json:"debug,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := obs.NewTrace()
	status := http.StatusOK
	defer func() {
		s.metrics.observe("/v1/batch", time.Since(start), status >= 400)
	}()
	fail := func(code int, format string, args ...any) {
		status = code
		WriteJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
	}

	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "POST required")
		return
	}
	debugTrace := r.URL.Query().Get("debug") == "trace"
	tr.Begin(obs.StageParse)
	var req batchRequest
	if code, err := s.decodeBody(w, r, &req); err != nil {
		fail(code, "%v", err)
		return
	}
	if len(req.Queries) == 0 {
		fail(http.StatusBadRequest, "\"queries\" must list at least one query")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		fail(http.StatusBadRequest, "batch of %d queries exceeds the %d-query limit", len(req.Queries), s.cfg.MaxBatch)
		return
	}

	// Compile every item up front: one malformed query fails the whole
	// batch before any ranking work is spent, so a 200 always carries a
	// slot for every requested query.
	roots := make([]*query.Node, len(req.Queries))
	ks := make([]int, len(req.Queries))
	for i, it := range req.Queries {
		root, err := s.compile(&queryRequest{
			SPARQL: it.SPARQL, Query: it.Query, Structure: it.Structure, Seed: it.Seed,
		})
		if err != nil {
			fail(http.StatusBadRequest, "queries[%d]: %v", i, err)
			return
		}
		roots[i] = root
		k := it.K
		if k <= 0 {
			k = req.K
		}
		if k <= 0 {
			k = s.cfg.DefaultK
		}
		if k > s.cfg.MaxK {
			k = s.cfg.MaxK
		}
		ks[i] = k
	}
	tr.Begin(obs.StageCanonicalize)

	version := s.answerVersion("exact")
	results := make([]batchResult, len(roots))
	keys := make([]string, len(roots))
	for i, root := range roots {
		canonical := query.CanonicalKey(root)
		keys[i] = fmt.Sprintf("v%d|%s|exact|k=%d", version, canonical, ks[i])
		results[i] = batchResult{
			Query:     root.String(),
			Canonical: canonical,
			Structure: req.Queries[i].Structure,
			K:         ks[i],
		}
	}

	// Per-query cache lookups: only the misses are ranked, and the batch
	// shares its key namespace with /v1/query, so a query answered either
	// way warms the cache for both.
	tr.Begin(obs.StageCacheLookup)
	var miss []int
	for i := range results {
		var cached []Answer
		var ok bool
		if err := s.cfg.Faults.Fire(FaultStageCacheGet, 0); err == nil {
			cached, ok = s.cache.Get(keys[i])
		}
		if ok {
			results[i].Cached = true
			results[i].Answers = cached
		} else {
			miss = append(miss, i)
		}
	}
	tr.End()
	s.metrics.observeBatch(len(roots), len(roots)-len(miss))

	if len(miss) > 0 {
		timeout := s.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		// The admission gate sees the batch as one unit of ranking work:
		// it occupies one pool worker for one (batched) scan.
		var svcMs float64
		if s.gate != nil {
			release, retryAfter, admitted := s.gate.admit(ctx)
			if !admitted {
				secs := int(retryAfter/time.Second) + 1
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				fail(http.StatusTooManyRequests,
					"expected queue wait %v exceeds the request deadline; retry later", retryAfter.Round(time.Millisecond))
				return
			}
			defer func() { release(svcMs) }()
		}

		ctx = obs.NewContext(ctx, tr)
		tr.Begin(obs.StageQueueWait)
		var rankErr error
		poolErr := s.pool.Do(ctx, func() {
			tr.End()
			svcStart := time.Now()
			rankErr = s.rankBatch(ctx, roots, ks, miss, results)
			svcMs = float64(time.Since(svcStart)) / float64(time.Millisecond)
		})
		if err := firstErr(poolErr, rankErr); err != nil {
			var pe *PanicError
			switch {
			case errors.As(err, &pe):
				s.metrics.workerPanics.Inc()
				s.cfg.PanicLog.Printf("serve: recovered panic on ranking worker: %v\n%s", pe.Value, pe.Stack)
				fail(http.StatusInternalServerError, "internal error while ranking")
			case errors.Is(err, errPoolClosed):
				fail(http.StatusServiceUnavailable, "server is draining")
			case errors.Is(err, shard.ErrAllShardsSkipped):
				fail(http.StatusGatewayTimeout, "every shard missed its deadline")
			case errors.Is(err, context.DeadlineExceeded):
				fail(http.StatusGatewayTimeout, "batch exceeded its %v deadline", timeout)
			default:
				fail(http.StatusServiceUnavailable, "%v", err)
			}
			return
		}

		for _, i := range miss {
			if results[i].Partial {
				// Same contract as /v1/query: a partial ranking is valid
				// for this response only and must not outlive the slow
				// shard that caused it.
				continue
			}
			if err := s.cfg.Faults.Fire(FaultStageCachePut, 0); err == nil {
				s.cache.Put(keys[i], results[i].Answers)
			}
		}
	}

	resp := batchResponse{
		Count:     len(results),
		CacheHits: len(results) - len(miss),
		ElapsedMs: tr.TotalMs(),
		Results:   results,
	}
	if debugTrace {
		resp.Debug = &debugInfo{Trace: tr.Stages(), TotalMs: resp.ElapsedMs}
	}
	encStart := time.Now()
	WriteJSON(w, http.StatusOK, resp)
	tr.Observe(obs.StageEncode, time.Since(encStart))
	s.metrics.observeTrace(tr)
	if thr := s.cfg.SlowQuery; thr > 0 && resp.ElapsedMs >= float64(thr)/float64(time.Millisecond) {
		s.metrics.slow.Inc()
		s.cfg.SlowLog.Printf("serve: slow batch (%.1fms >= %v): %d queries, %d cached, trace: %s",
			resp.ElapsedMs, thr, resp.Count, resp.CacheHits, tr)
	}
}

// rankBatch runs on a pool worker and fills results[i] for every i in
// miss. When the configured ranker batches (BatchRanker), all misses go
// through one RankBatch gather; otherwise each miss ranks alone through
// the same per-query path /v1/query uses, so the endpoint works — with
// identical answers — against any ranker, including none.
func (s *Server) rankBatch(ctx context.Context, roots []*query.Node, ks []int, miss []int, results []batchResult) error {
	if err := s.cfg.Faults.Fire(FaultStageRank, 0); err != nil {
		return err
	}
	if br, ok := s.cfg.Ranker.(BatchRanker); ok {
		mroots := make([]*query.Node, len(miss))
		mks := make([]int, len(miss))
		for j, i := range miss {
			mroots[j] = roots[i]
			mks[j] = ks[i]
		}
		rs, err := br.RankBatch(ctx, mroots, mks)
		if err != nil {
			return err
		}
		begin := time.Now()
		for j, i := range miss {
			results[i].Answers = s.labelAnswers(rs[j])
			results[i].Partial = rs[j].Partial
			results[i].ShardsAnswered = rs[j].Answered
		}
		obs.FromContext(ctx).Observe(obs.StageEncode, time.Since(begin))
		return nil
	}
	for _, i := range miss {
		answers, sharded, err := s.rank(ctx, roots[i], ks[i], "exact")
		if err != nil {
			return err
		}
		results[i].Answers = answers
		if sharded != nil && sharded.Partial {
			results[i].Partial = true
			results[i].ShardsAnswered = sharded.Answered
		}
	}
	return nil
}

// labelAnswers turns a shard result into the response answer list,
// resolving entity names; identical labelling to the /v1/query sharded
// path.
func (s *Server) labelAnswers(res *shard.Result) []Answer {
	answers := make([]Answer, len(res.IDs))
	for i, e := range res.IDs {
		dist := res.Dists[i]
		answers[i] = Answer{ID: e, Entity: s.cfg.Entities.Name(int32(e)), Distance: &dist}
	}
	return answers
}
