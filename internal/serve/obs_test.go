package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/shard"
)

// postQueryURL posts to an arbitrary query URL (lets tests append
// ?debug=trace).
func postQueryURL(t *testing.T, url string, req queryRequest) (queryResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer res.Body.Close()
	var qr queryResponse
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return qr, res.StatusCode
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	res, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsEndpoint is the acceptance check for the unified registry:
// one /metrics scrape covers cache hit/miss counters, per-stage latency
// histograms, per-endpoint request counters and per-shard scan counters,
// all in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, _, _, ts := newTestServer(t, func(cfg *Config) {
		cfg.Metrics = reg
		r, err := cfg.Model.(*halk.Model).NewShardedRanker(shard.Options{Shards: 3, Metrics: reg})
		if err != nil {
			t.Fatalf("NewShardedRanker: %v", err)
		}
		cfg.Ranker = r
	})

	req := queryRequest{Structure: "2i", Seed: 7, K: 8}
	postQuery(t, ts, req)
	postQuery(t, ts, req) // cache hit

	out := waitForMetrics(t, ts.URL, []string{
		"# TYPE halk_http_requests_total counter",
		`halk_http_requests_total{endpoint="/v1/query"} 2`,
		"# TYPE halk_cache_hits_total counter",
		"halk_cache_hits_total 1",
		"halk_cache_misses_total 1",
		"# TYPE halk_stage_duration_ms histogram",
		`halk_stage_duration_ms_bucket{stage="parse",le="+Inf"}`,
		`halk_stage_duration_ms_bucket{stage="shard_scatter",le="+Inf"}`,
		`halk_stage_duration_ms_bucket{stage="cache_lookup",le="+Inf"}`,
		"# TYPE halk_shard_scans_total counter",
		`halk_shard_scans_total{shard="0"} 1`,
		`halk_shard_scans_total{shard="2"} 1`,
		"# TYPE halk_http_request_duration_ms histogram",
		"halk_process_uptime_seconds",
		"halk_cache_size 1",
	})
	_ = out
}

// waitForMetrics scrapes /metrics until every wanted substring appears
// (counters recorded after the response is written need a beat to
// land), failing the test with the last scrape if they never do.
func waitForMetrics(t *testing.T, url string, wants []string) string {
	t.Helper()
	var out string
	deadline := time.Now().Add(3 * time.Second)
	for {
		out = scrapeMetrics(t, url)
		missing := ""
		for _, want := range wants {
			if !strings.Contains(out, want) {
				missing = want
				break
			}
		}
		if missing == "" {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never contained %q; last scrape:\n%s", missing, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDebugTraceStagesSumToTotal is the acceptance check for query
// tracing: ?debug=trace returns per-stage timings whose sum is within
// 10%% of the reported total latency, on both the sharded and the
// full-scan path.
func TestDebugTraceStagesSumToTotal(t *testing.T) {
	run := func(t *testing.T, mutate func(*Config), wantStage string) {
		_, _, _, ts := newTestServer(t, mutate)
		qr, code := postQueryURL(t, ts.URL+"/v1/query?debug=trace", queryRequest{Structure: "2i", Seed: 7, K: 8})
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if qr.Debug == nil {
			t.Fatal("?debug=trace returned no debug section")
		}
		sum := 0.0
		stages := map[string]bool{}
		for _, st := range qr.Debug.Trace {
			sum += st.Ms
			stages[st.Stage] = true
		}
		for _, s := range []string{obs.StageParse, obs.StageCanonicalize, obs.StageCacheLookup, obs.StageQueueWait, wantStage} {
			if !stages[s] {
				t.Errorf("trace missing stage %q: %+v", s, qr.Debug.Trace)
			}
		}
		if qr.Debug.TotalMs <= 0 {
			t.Fatalf("total_ms = %v", qr.Debug.TotalMs)
		}
		// 10% relative, with an absolute floor: on a sub-millisecond test
		// query the untraced slack between stages (scheduler wakeups,
		// handler glue) is tens of microseconds of pure noise, which a
		// purely relative bound flags spuriously.
		if gap := math.Abs(sum - qr.Debug.TotalMs); gap > 0.1*qr.Debug.TotalMs && gap > 0.25 {
			t.Errorf("stage sum %.4fms vs total %.4fms: outside 10%% (%+v)", sum, qr.Debug.TotalMs, qr.Debug.Trace)
		}
		// A plain query carries no debug payload.
		plain, _ := postQuery(t, ts, queryRequest{Structure: "2i", Seed: 8, K: 8})
		if plain.Debug != nil {
			t.Error("debug section present without ?debug=trace")
		}
	}

	t.Run("full-scan", func(t *testing.T) { run(t, nil, obs.StageRankScan) })
	t.Run("sharded", func(t *testing.T) {
		run(t, func(cfg *Config) {
			r, err := cfg.Model.(*halk.Model).NewShardedRanker(shard.Options{Shards: 2})
			if err != nil {
				t.Fatalf("NewShardedRanker: %v", err)
			}
			cfg.Ranker = r
		}, obs.StageShardScatter)
	})
}

// syncWriter lets the test read the slow-query log without racing the
// handler goroutine that writes it.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestSlowQueryLog(t *testing.T) {
	var sw syncWriter
	_, _, _, ts := newTestServer(t, func(cfg *Config) {
		cfg.SlowQuery = time.Nanosecond // every query is "slow"
		cfg.SlowLog = log.New(&sw, "", 0)
	})
	postQuery(t, ts, queryRequest{Structure: "1p", Seed: 3, K: 4})

	// The log line lands after the response is written; wait for it.
	var out string
	deadline := time.Now().Add(3 * time.Second)
	for {
		out = sw.String()
		if strings.Contains(out, "slow query") || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "trace:") {
		t.Fatalf("slow-query log entry missing or malformed: %q", out)
	}
	if !strings.Contains(out, obs.StageRankScan+"=") {
		t.Errorf("slow-query log lacks stage breakdown: %q", out)
	}
	waitForMetrics(t, ts.URL, []string{"halk_slow_queries_total 1"})
}
