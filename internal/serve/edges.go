package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/halk-kg/halk/internal/ingest"
	"github.com/halk-kg/halk/internal/kg"
)

// EdgeSink accepts validated edge mutations for asynchronous
// application; ingest.Ingester implements it. Wiring one (Config.Edges)
// enables POST /v1/edges.
type EdgeSink interface {
	// Submit durably logs the batch and returns the WAL sequence that
	// owns it. ingest.ErrBacklog means the drainer is behind (mapped to
	// 429); ingest.ErrClosed means the sink is shutting down (503).
	Submit(recs []ingest.Record) (uint64, error)
	// Stats reports ingest progress for /v1/stats.
	Stats() ingest.Stats
}

// edgeSpec is one triple in a POST /v1/edges batch, named by dictionary
// entries (the same names /v1/query uses).
type edgeSpec struct {
	H string `json:"h"`
	R string `json:"r"`
	T string `json:"t"`
}

// edgesRequest is the POST /v1/edges body: triples to assert and
// retract. Every name must already exist in the loaded vocabulary — the
// embedding tables are sized at load, so unknown entities or relations
// are rejected rather than grown.
type edgesRequest struct {
	Add    []edgeSpec `json:"add,omitempty"`
	Remove []edgeSpec `json:"remove,omitempty"`
}

// edgesResponse acknowledges an accepted batch. Acceptance means the
// batch is durably logged (sequence Seq); the fine-tuned embeddings
// appear in query answers after the background drain publishes, at
// which point the served entity version moves past EntityVersion.
type edgesResponse struct {
	Seq           uint64 `json:"seq"`
	Added         int    `json:"added"`
	Removed       int    `json:"removed"`
	EntityVersion uint64 `json:"entity_version"`
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusAccepted
	defer func() {
		s.metrics.observe("/v1/edges", time.Since(start), status >= 400)
	}()
	fail := func(code int, format string, args ...any) {
		status = code
		WriteJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
	}

	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.cfg.Edges == nil {
		fail(http.StatusServiceUnavailable, "edge ingest is not enabled on this server")
		return
	}
	var req edgesRequest
	if code, err := s.decodeBody(w, r, &req); err != nil {
		fail(code, "%v", err)
		return
	}
	if len(req.Add)+len(req.Remove) == 0 {
		fail(http.StatusBadRequest, "empty batch: set \"add\" and/or \"remove\"")
		return
	}

	recs := make([]ingest.Record, 0, len(req.Add)+len(req.Remove))
	appendSpecs := func(specs []edgeSpec, op ingest.Op) error {
		for _, sp := range specs {
			h, ok := s.cfg.Entities.ID(sp.H)
			if !ok {
				return fmt.Errorf("unknown entity %q (the vocabulary is fixed at load)", sp.H)
			}
			rel, ok := s.cfg.Relations.ID(sp.R)
			if !ok {
				return fmt.Errorf("unknown relation %q (the vocabulary is fixed at load)", sp.R)
			}
			t, ok := s.cfg.Entities.ID(sp.T)
			if !ok {
				return fmt.Errorf("unknown entity %q (the vocabulary is fixed at load)", sp.T)
			}
			recs = append(recs, ingest.Record{Op: op, H: kg.EntityID(h), R: kg.RelationID(rel), T: kg.EntityID(t)})
		}
		return nil
	}
	if err := appendSpecs(req.Add, ingest.OpAdd); err != nil {
		fail(http.StatusBadRequest, "%v", err)
		return
	}
	if err := appendSpecs(req.Remove, ingest.OpRemove); err != nil {
		fail(http.StatusBadRequest, "%v", err)
		return
	}

	seq, err := s.cfg.Edges.Submit(recs)
	switch {
	case errors.Is(err, ingest.ErrBacklog):
		w.Header().Set("Retry-After", "1")
		fail(http.StatusTooManyRequests, "ingest backlog is full; retry later")
		return
	case errors.Is(err, ingest.ErrClosed):
		fail(http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		fail(http.StatusInternalServerError, "%v", err)
		return
	}
	WriteJSON(w, http.StatusAccepted, edgesResponse{
		Seq:           seq,
		Added:         len(req.Add),
		Removed:       len(req.Remove),
		EntityVersion: s.answerVersion("exact"),
	})
}

// decodeBody decodes a JSON request body under the server's body-size
// limit. An over-limit body maps to 413, malformed JSON to 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("invalid JSON body: %v", err)
	}
	return http.StatusOK, nil
}
