package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// TopologyManager is the optional Ranker upgrade a live replica
// topology implements (cluster.Router does): replica-set membership
// changes at runtime, exposed over POST /v1/topology/join and
// /v1/topology/leave. Joined replicas enter in probation — they serve
// nothing until the router's identity probe passes — so join answers
// 202 Accepted, not 200.
type TopologyManager interface {
	// Join adds a replica endpoint to entity range ri's replica set in
	// probation. Range boundaries are fixed; only set composition
	// changes.
	Join(ri int, addr string) error
	// Leave removes a replica endpoint from the topology. Removing a
	// range's last replica is refused.
	Leave(addr string) error
	// TopologyVersion is the monotone topology-snapshot version,
	// bumped on every membership change.
	TopologyVersion() uint64
}

// StatusCoder is the error upgrade the topology endpoints map to HTTP:
// membership errors from the cluster package carry their status
// (404 unknown replica, 409 duplicate/last-replica, 400 bad range)
// without serve importing cluster. Errors without one answer 400.
type StatusCoder interface{ HTTPStatus() int }

// topologyRequest is the join/leave body: {"node": "host:port"} plus,
// for join, {"range": N}.
type topologyRequest struct {
	Range *int   `json:"range,omitempty"`
	Node  string `json:"node"`
}

// topologyResponse acknowledges a membership change. Range is a
// pointer so the leave ack (no range) omits it while a join to range 0
// still reports it.
type topologyResponse struct {
	Status          string `json:"status"`
	Node            string `json:"node"`
	Range           *int   `json:"range,omitempty"`
	TopologyVersion uint64 `json:"topology_version"`
}

// topologyManager resolves the Ranker's TopologyManager upgrade, nil
// when the server ranks through something static (in-process engine,
// pre-replica router).
func (s *Server) topologyManager() TopologyManager {
	tm, _ := s.cfg.Ranker.(TopologyManager)
	return tm
}

// topologyErrStatus maps a membership error to its HTTP status.
func topologyErrStatus(err error) int {
	var sc StatusCoder
	if errors.As(err, &sc) {
		return sc.HTTPStatus()
	}
	return http.StatusBadRequest
}

// handleTopologyJoin is POST /v1/topology/join: add a replica to a
// range's set in probation. 202 — admission is asynchronous (the
// identity probe runs off the request path); watch the replica's state
// in /v1/stats.
func (s *Server) handleTopologyJoin(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusAccepted
	defer func() {
		s.metrics.observe("/v1/topology/join", time.Since(start), status >= 400)
	}()
	fail := func(code int, format string, args ...any) {
		status = code
		WriteJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
	}
	tm := s.topologyManager()
	if tm == nil {
		fail(http.StatusNotImplemented, "this server's topology is static (no cluster router)")
		return
	}
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req topologyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Node == "" {
		fail(http.StatusBadRequest, "\"node\" is required")
		return
	}
	if req.Range == nil {
		fail(http.StatusBadRequest, "\"range\" is required")
		return
	}
	if err := tm.Join(*req.Range, req.Node); err != nil {
		fail(topologyErrStatus(err), "%v", err)
		return
	}
	WriteJSON(w, http.StatusAccepted, topologyResponse{
		Status:          "probation",
		Node:            req.Node,
		Range:           req.Range,
		TopologyVersion: tm.TopologyVersion(),
	})
}

// handleTopologyLeave is POST /v1/topology/leave: remove a replica
// from the topology. In-flight gathers may still finish against it;
// new gathers never route to it.
func (s *Server) handleTopologyLeave(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() {
		s.metrics.observe("/v1/topology/leave", time.Since(start), status >= 400)
	}()
	fail := func(code int, format string, args ...any) {
		status = code
		WriteJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
	}
	tm := s.topologyManager()
	if tm == nil {
		fail(http.StatusNotImplemented, "this server's topology is static (no cluster router)")
		return
	}
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req topologyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Node == "" {
		fail(http.StatusBadRequest, "\"node\" is required")
		return
	}
	if err := tm.Leave(req.Node); err != nil {
		fail(topologyErrStatus(err), "%v", err)
		return
	}
	WriteJSON(w, http.StatusOK, topologyResponse{
		Status:          "left",
		Node:            req.Node,
		TopologyVersion: tm.TopologyVersion(),
	})
}
