package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

func postBatch(t *testing.T, ts *httptest.Server, req batchRequest) (batchResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer res.Body.Close()
	var br batchResponse
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&br); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
	}
	return br, res.StatusCode
}

// assertBatchSlotEqualsQuery checks one batch slot against the same
// query answered alone through /v1/query: same answers, same distances,
// bit for bit (both paths serialise float64 distances through the same
// JSON encoder, so string-equal JSON implies bit-equal values).
func assertBatchSlotEqualsQuery(t *testing.T, label string, slot batchResult, lone queryResponse) {
	t.Helper()
	if slot.Canonical != lone.Canonical {
		t.Fatalf("%s: canonical %q, lone query %q", label, slot.Canonical, lone.Canonical)
	}
	if len(slot.Answers) != len(lone.Answers) {
		t.Fatalf("%s: %d answers, lone query %d", label, len(slot.Answers), len(lone.Answers))
	}
	for i := range lone.Answers {
		if slot.Answers[i].ID != lone.Answers[i].ID {
			t.Errorf("%s: answer %d = %d, lone query %d", label, i, slot.Answers[i].ID, lone.Answers[i].ID)
		}
		sd, ld := slot.Answers[i].Distance, lone.Answers[i].Distance
		switch {
		case (sd == nil) != (ld == nil):
			t.Errorf("%s: answer %d distance presence differs", label, i)
		case sd != nil && *sd != *ld:
			t.Errorf("%s: answer %d distance %v, lone query %v", label, i, *sd, *ld)
		}
	}
}

// TestBatchMatchesSingleQueries is the endpoint's identity contract on
// the batched sharded path: every slot of a /v1/batch answered through
// ShardedRanker.RankBatch must equal the same query through /v1/query.
func TestBatchMatchesSingleQueries(t *testing.T) {
	_, _, _, ts := newTestServer(t, func(cfg *Config) {
		r, err := cfg.Model.(*halk.Model).NewShardedRanker(shard.Options{Shards: 3})
		if err != nil {
			t.Fatalf("NewShardedRanker: %v", err)
		}
		cfg.Ranker = r
	})

	req := batchRequest{
		K: 7,
		Queries: []batchItem{
			{Structure: "1p", Seed: 3},
			{Structure: "2i", Seed: 5, K: 12}, // per-item k override
			{Structure: "pi", Seed: 9},
			{Structure: "2u", Seed: 4, K: 3},
		},
	}
	br, code := postBatch(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if br.Count != len(req.Queries) || len(br.Results) != len(req.Queries) {
		t.Fatalf("count=%d results=%d, want %d", br.Count, len(br.Results), len(req.Queries))
	}
	if br.CacheHits != 0 {
		t.Fatalf("first batch reported %d cache hits", br.CacheHits)
	}
	wantK := []int{7, 12, 7, 3}
	for i, it := range req.Queries {
		slot := br.Results[i]
		if slot.K != wantK[i] {
			t.Fatalf("slot %d: k=%d, want %d", i, slot.K, wantK[i])
		}
		if slot.Cached || slot.Partial {
			t.Fatalf("slot %d: cached=%v partial=%v on a fresh full batch", i, slot.Cached, slot.Partial)
		}
		// The lone query below hits the cache entry the batch created —
		// proof the two endpoints share one key namespace — and equals
		// the batch slot.
		lone, code := postQuery(t, ts, queryRequest{Structure: it.Structure, Seed: it.Seed, K: wantK[i]})
		if code != http.StatusOK {
			t.Fatalf("lone query %d: status %d", i, code)
		}
		if !lone.Cached {
			t.Errorf("slot %d: lone /v1/query missed the cache entry the batch stored", i)
		}
		assertBatchSlotEqualsQuery(t, fmt.Sprintf("slot %d (%s)", i, it.Structure), slot, lone)
	}

	// A repeat of the same batch is answered entirely from the cache.
	again, code := postBatch(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("repeat status %d", code)
	}
	if again.CacheHits != len(req.Queries) {
		t.Fatalf("repeat batch: %d cache hits, want %d", again.CacheHits, len(req.Queries))
	}
	for i := range again.Results {
		if !again.Results[i].Cached {
			t.Errorf("repeat slot %d not served from cache", i)
		}
	}

	stats := getStats(t, ts)
	if stats.Endpoints["/v1/batch"].Requests < 2 {
		t.Errorf("stats saw %d /v1/batch requests, want >= 2", stats.Endpoints["/v1/batch"].Requests)
	}
}

// TestBatchFallbackWithoutBatchRanker serves /v1/batch with no Ranker
// at all: every miss ranks through the same single-query path
// /v1/query uses, and the answers still agree slot for slot.
func TestBatchFallbackWithoutBatchRanker(t *testing.T) {
	_, _, ds, ts := newTestServer(t, nil)

	items := []batchItem{
		{Query: dslFor(ds, 1, 4)},
		{Query: dslFor(ds, 3, 17), K: 9},
	}
	br, code := postBatch(t, ts, batchRequest{Queries: items, K: 5})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for i, it := range items {
		k := it.K
		if k == 0 {
			k = 5
		}
		lone, code := postQuery(t, ts, queryRequest{Query: it.Query, K: k})
		if code != http.StatusOK {
			t.Fatalf("lone query %d: status %d", i, code)
		}
		assertBatchSlotEqualsQuery(t, fmt.Sprintf("fallback slot %d", i), br.Results[i], lone)
	}
}

// TestBatchMixedCacheHits pre-warms one query through /v1/query, then
// batches it with a cold one: the warm slot must come from the cache,
// the cold one from ranking.
func TestBatchMixedCacheHits(t *testing.T) {
	_, _, ds, ts := newTestServer(t, nil)

	warm := queryRequest{Query: dslFor(ds, 2, 8), K: 6}
	if _, code := postQuery(t, ts, warm); code != http.StatusOK {
		t.Fatalf("warm query failed")
	}
	br, code := postBatch(t, ts, batchRequest{
		K: 6,
		Queries: []batchItem{
			{Query: warm.Query},
			{Query: dslFor(ds, 4, 21)},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !br.Results[0].Cached || br.Results[1].Cached {
		t.Fatalf("cached flags = %v, %v; want true, false", br.Results[0].Cached, br.Results[1].Cached)
	}
	if br.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", br.CacheHits)
	}
}

// partialRanker is a BatchRanker stub whose every ranking is partial,
// to pin the per-slot partial semantics: partial slots carry their
// answered-shard list and are never cached.
type partialRanker struct{}

func (partialRanker) rank(k int) *shard.Result {
	ids := make([]kg.EntityID, k)
	dists := make([]float64, k)
	for i := range ids {
		ids[i] = kg.EntityID(i)
		dists[i] = float64(i)
	}
	return &shard.Result{IDs: ids, Dists: dists, Partial: true, Answered: []int{0}, Version: 1}
}

func (p partialRanker) RankTopK(_ context.Context, _ *query.Node, k int) (*shard.Result, error) {
	return p.rank(k), nil
}

func (p partialRanker) RankBatch(_ context.Context, roots []*query.Node, ks []int) ([]*shard.Result, error) {
	out := make([]*shard.Result, len(roots))
	for i := range roots {
		out[i] = p.rank(ks[i])
	}
	return out, nil
}

func (partialRanker) SnapshotVersion() uint64        { return 1 }
func (partialRanker) NumShards() int                 { return 2 }
func (partialRanker) ShardStats() []shard.ShardStats { return nil }

func TestBatchPartialSlotsNeverCached(t *testing.T) {
	_, _, ds, ts := newTestServer(t, func(cfg *Config) {
		cfg.Ranker = partialRanker{}
	})
	req := batchRequest{K: 4, Queries: []batchItem{{Query: dslFor(ds, 0, 2)}}}
	br, code := postBatch(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	slot := br.Results[0]
	if !slot.Partial || len(slot.ShardsAnswered) != 1 || slot.ShardsAnswered[0] != 0 {
		t.Fatalf("slot = %+v, want partial with shards_answered=[0]", slot)
	}
	if slot.Cached {
		t.Fatal("partial slot marked cached")
	}
	// A partial answer must not have been stored: the repeat still ranks.
	again, _ := postBatch(t, ts, req)
	if again.Results[0].Cached {
		t.Fatal("repeat of a partial slot was served from cache")
	}
}

// TestBatchValidation covers the endpoint's error contract.
func TestBatchValidation(t *testing.T) {
	_, _, ds, ts := newTestServer(t, func(cfg *Config) { cfg.MaxBatch = 2 })

	if _, code := postBatch(t, ts, batchRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	over := batchRequest{Queries: []batchItem{
		{Query: dslFor(ds, 0, 1)}, {Query: dslFor(ds, 0, 2)}, {Query: dslFor(ds, 0, 3)},
	}}
	if _, code := postBatch(t, ts, over); code != http.StatusBadRequest {
		t.Errorf("over-limit batch: status %d, want 400", code)
	}
	bad := batchRequest{Queries: []batchItem{
		{Query: dslFor(ds, 0, 1)},
		{Query: "p[r?](nope)"}, // malformed item fails the whole batch
	}}
	if _, code := postBatch(t, ts, bad); code != http.StatusBadRequest {
		t.Errorf("malformed item: status %d, want 400", code)
	}
	res, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", res.StatusCode)
	}
}
