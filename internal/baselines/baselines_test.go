package baselines

import (
	"math"
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

func testConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Dim = 8
	cfg.Hidden = 16
	return cfg
}

func testDataset(seed int64) *kg.Dataset { return kg.SynthFB237(seed) }

func allModels(ds *kg.Dataset, seed int64) []model.Interface {
	cfg := testConfig(seed)
	return []model.Interface{
		NewConE(ds.Train, cfg),
		NewNewLook(ds.Train, cfg),
		NewMLPMix(ds.Train, cfg),
	}
}

func TestNamesAndSupports(t *testing.T) {
	ds := testDataset(1)
	ms := allModels(ds, 1)
	wantNames := []string{"ConE", "NewLook", "MLPMix"}
	for i, m := range ms {
		if m.Name() != wantNames[i] {
			t.Errorf("model %d name = %q, want %q", i, m.Name(), wantNames[i])
		}
	}
	cone, newlook, mlp := ms[0], ms[1], ms[2]
	// ConE and MLPMix: negation yes, difference no.
	for _, m := range []model.Interface{cone, mlp} {
		if !m.Supports("2in") || m.Supports("2d") || m.Supports("dp") {
			t.Errorf("%s: wrong structure support", m.Name())
		}
	}
	// NewLook: difference yes, negation no.
	if !newlook.Supports("2d") || !newlook.Supports("dp") || newlook.Supports("2in") || newlook.Supports("pni") {
		t.Error("NewLook: wrong structure support")
	}
	// Everyone supports plain EPFO.
	for _, m := range ms {
		for _, s := range []string{"1p", "2p", "3p", "2i", "3i", "ip", "pi", "2u", "up"} {
			if !m.Supports(s) {
				t.Errorf("%s should support %s", m.Name(), s)
			}
		}
	}
}

func TestLossFiniteAndGradients(t *testing.T) {
	ds := testDataset(2)
	rng := rand.New(rand.NewSource(3))
	for _, m := range allModels(ds, 2) {
		for _, structure := range query.TrainStructures {
			if !m.Supports(structure) {
				continue
			}
			w := query.Workload(structure, 1, ds.Train, ds.Train, rng)
			if len(w) == 0 {
				t.Fatalf("%s/%s: no queries", m.Name(), structure)
			}
			tape := autodiff.NewTape()
			loss, ok := m.Loss(tape, &w[0], 4, rng)
			if !ok {
				t.Fatalf("%s/%s: loss not ok", m.Name(), structure)
			}
			lv := loss.Value()[0]
			if math.IsNaN(lv) || math.IsInf(lv, 0) || lv < 0 {
				t.Fatalf("%s/%s: loss = %g", m.Name(), structure, lv)
			}
			m.Params().ZeroGrad()
			tape.Backward(loss)
			ent := m.Params().Get("entity")
			nonzero := false
			for _, g := range ent.Grad {
				if g != 0 {
					nonzero = true
					break
				}
			}
			if !nonzero {
				t.Fatalf("%s/%s: no gradient on entities", m.Name(), structure)
			}
		}
	}
}

func TestDistancesShapeAndValidity(t *testing.T) {
	ds := testDataset(4)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(5)))
	for _, m := range allModels(ds, 4) {
		for _, structure := range []string{"1p", "2i", "2u", "up"} {
			q, ok := s.Sample(structure)
			if !ok {
				t.Fatalf("sampling %s failed", structure)
			}
			d := m.Distances(q)
			if len(d) != ds.Train.NumEntities() {
				t.Fatalf("%s: Distances len = %d", m.Name(), len(d))
			}
			for _, v := range d {
				if math.IsNaN(v) || v < 0 {
					t.Fatalf("%s/%s: bad distance %g", m.Name(), structure, v)
				}
			}
		}
	}
}

func TestUnsupportedOperatorsPanic(t *testing.T) {
	ds := testDataset(6)
	cfg := testConfig(6)
	diff := query.NewDifference(
		query.NewProjection(0, query.NewAnchor(0)),
		query.NewProjection(1, query.NewAnchor(1)),
	)
	neg := query.NewIntersection(
		query.NewProjection(0, query.NewAnchor(0)),
		query.NewNegation(query.NewProjection(1, query.NewAnchor(1))),
	)
	cases := []struct {
		m model.Interface
		q *query.Node
	}{
		{NewConE(ds.Train, cfg), diff},
		{NewMLPMix(ds.Train, cfg), diff},
		{NewNewLook(ds.Train, cfg), neg},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.m.Name())
				}
			}()
			c.m.Distances(c.q)
		}()
	}
}

func TestConELinearNegationComplement(t *testing.T) {
	ds := testDataset(7)
	c := NewConE(ds.Train, testConfig(7))
	tape := autodiff.NewTape()
	in := c.embed(tape, query.NewProjection(0, query.NewAnchor(1)))
	out := c.embed(tape, query.NewNegation(query.NewProjection(0, query.NewAnchor(1))))
	for j := range in.ap.Value() {
		sum := in.ap.Value()[j] + out.ap.Value()[j]
		if math.Abs(sum-2*math.Pi) > 1e-9 {
			t.Fatalf("dim %d: apertures sum to %g, want 2π", j, sum)
		}
	}
}

func TestNewLookOffsetsNonNegative(t *testing.T) {
	ds := testDataset(8)
	nl := NewNewLook(ds.Train, testConfig(8))
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(9)))
	for _, structure := range []string{"1p", "2p", "2i", "2d", "dp"} {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		tape := autodiff.NewTape()
		for _, d := range query.DNF(q) {
			b := nl.embed(tape, d)
			for j, o := range b.offset.Value() {
				if o < 0 {
					t.Fatalf("%s: offset[%d] = %g < 0", structure, j, o)
				}
			}
		}
	}
}

func TestBaselineTrainingRuns(t *testing.T) {
	ds := testDataset(10)
	for _, m := range allModels(ds, 10) {
		res, err := model.Train(m, ds.Train, model.TrainConfig{
			QueriesPerStructure: 20,
			Steps:               40,
			BatchSize:           4,
			NegSamples:          4,
			LR:                  0.01,
			Seed:                11,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if math.IsNaN(res.FinalLoss) || res.FinalLoss < 0 {
			t.Fatalf("%s: final loss %g", m.Name(), res.FinalLoss)
		}
	}
}
