package baselines

import (
	"math"
	"math/rand"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// BetaE (Ren & Leskovec, NeurIPS 2020) embeds entities and queries as
// products of Beta distributions — the paper's second-group probabilistic
// baseline. Supported operators: projection (an MLP on the distribution
// parameters and the relation embedding), intersection (attention-weighted
// parameter interpolation — the weighted product of Beta PDFs), negation
// (the defining parameter reciprocal (α, β) → (1/α, 1/β), a fixed linear
// transformation), exact union via DNF. No difference operator.
//
// The entity-to-query distance is the KL divergence
// KL(p_entity ‖ p_query) summed over dimensions.
type BetaE struct {
	cfg    Config
	graph  *kg.Graph
	params *autodiff.Params

	ent *autodiff.Tensor // raw entity params, n × 2d (softplus -> α‖β)
	rel *autodiff.Tensor // relation embeddings, m × d

	proj     *autodiff.MLP // [α‖β‖r] -> 2d raw
	interAtt *autodiff.MLP // attention scores for intersection
}

var _ model.Interface = (*BetaE)(nil)

// betaDist is an on-tape product-of-Betas embedding: positive α, β.
type betaDist struct {
	alpha autodiff.V
	beta  autodiff.V
}

// NewBetaE builds a BetaE model over the training graph.
func NewBetaE(g *kg.Graph, cfg Config) *BetaE {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := autodiff.NewParams()
	d, h := cfg.Dim, cfg.Hidden
	return &BetaE{
		cfg:    cfg,
		graph:  g,
		params: p,
		ent:    p.NewUniform("entity", g.NumEntities(), 2*d, -0.5, 1.5, rng),
		rel:    p.NewUniform("relation", g.NumRelations(), d, -1, 1, rng),

		proj:     autodiff.NewMLP(p, "proj", []int{3 * d, h, 2 * d}, rng),
		interAtt: autodiff.NewMLP(p, "inter.att", []int{2 * d, h, 2 * d}, rng),
	}
}

// Name implements model.Interface.
func (be *BetaE) Name() string { return "BetaE" }

// Params implements model.Interface.
func (be *BetaE) Params() *autodiff.Params { return be.params }

// Supports implements model.Interface: everything except difference.
func (be *BetaE) Supports(structure string) bool { return !query.UsesDifference(structure) }

// positive maps raw parameters to strictly positive Beta parameters.
func positive(t *autodiff.Tape, raw autodiff.V) autodiff.V {
	return t.AddScalar(t.Softplus(raw), 0.05)
}

func (be *BetaE) split(t *autodiff.Tape, raw autodiff.V) betaDist {
	d := be.cfg.Dim
	return betaDist{
		alpha: positive(t, t.Slice(raw, 0, d)),
		beta:  positive(t, t.Slice(raw, d, d)),
	}
}

func (be *BetaE) embed(t *autodiff.Tape, n *query.Node) betaDist {
	switch n.Op {
	case query.OpAnchor:
		return be.split(t, be.ent.Leaf(t, int(n.Anchor)))
	case query.OpProjection:
		in := be.embed(t, n.Args[0])
		r := be.rel.Leaf(t, int(n.Rel))
		raw := be.proj.Forward(t, t.Concat(in.alpha, in.beta, r))
		return be.split(t, raw)
	case query.OpIntersection:
		kids := make([]betaDist, len(n.Args))
		scores := make([]autodiff.V, len(n.Args))
		for i, a := range n.Args {
			kids[i] = be.embed(t, a)
			scores[i] = be.interAtt.Forward(t, t.Concat(kids[i].alpha, kids[i].beta))
		}
		w := t.SoftmaxStack(scores)
		d := be.cfg.Dim
		var alpha, beta autodiff.V
		for i, k := range kids {
			wa := t.Slice(w[i], 0, d)
			wb := t.Slice(w[i], d, d)
			ta := t.Mul(wa, k.alpha)
			tb := t.Mul(wb, k.beta)
			if i == 0 {
				alpha, beta = ta, tb
			} else {
				alpha, beta = t.Add(alpha, ta), t.Add(beta, tb)
			}
		}
		return betaDist{alpha: alpha, beta: beta}
	case query.OpNegation:
		in := be.embed(t, n.Args[0])
		return betaDist{alpha: t.Reciprocal(in.alpha), beta: t.Reciprocal(in.beta)}
	case query.OpDifference:
		panic("baselines: BetaE does not support the difference operator")
	case query.OpUnion:
		panic("baselines: embed on union node; rewrite with query.DNF first")
	}
	panic("baselines: BetaE embed: unknown op")
}

// distance is the summed KL divergence KL(entity ‖ query).
func (be *BetaE) distance(t *autodiff.Tape, e kg.EntityID, q betaDist) autodiff.V {
	ent := be.split(t, be.ent.Leaf(t, int(e)))
	return t.Sum(t.BetaKL(ent.alpha, ent.beta, q.alpha, q.beta))
}

// Loss implements model.Interface.
func (be *BetaE) Loss(t *autodiff.Tape, q *query.Query, negSamples int, rng *rand.Rand) (autodiff.V, bool) {
	pos, negs, ok := samplePosNegs(q, be.graph.NumEntities(), negSamples, rng)
	if !ok {
		return autodiff.V{}, false
	}
	disjuncts := query.DNF(q.Root)
	dists := make([]betaDist, len(disjuncts))
	for i, d := range disjuncts {
		dists[i] = be.embed(t, d)
	}
	score := func(e kg.EntityID) autodiff.V {
		per := make([]autodiff.V, len(dists))
		for i, bd := range dists {
			per[i] = be.distance(t, e, bd)
		}
		return minScalar(t, per)
	}
	negScores := make([]autodiff.V, len(negs))
	for i, ne := range negs {
		negScores[i] = score(ne)
	}
	return marginLoss(t, be.cfg.Gamma, score(pos), negScores), true
}

// Distances implements model.Interface.
func (be *BetaE) Distances(n *query.Node) []float64 {
	t := autodiff.NewTape()
	disjuncts := query.DNF(n)
	type vdist struct{ alpha, beta []float64 }
	dists := make([]vdist, len(disjuncts))
	for i, d := range disjuncts {
		bd := be.embed(t, d)
		dists[i] = vdist{
			alpha: append([]float64(nil), bd.alpha.Value()...),
			beta:  append([]float64(nil), bd.beta.Value()...),
		}
	}
	d := be.cfg.Dim
	out := make([]float64, be.graph.NumEntities())
	for e := range out {
		raw := be.ent.Row(e)
		best := math.Inf(1)
		for _, q := range dists {
			kl := 0.0
			for j := 0; j < d; j++ {
				a1 := softplusF(raw[j]) + 0.05
				b1 := softplusF(raw[d+j]) + 0.05
				kl += betaKLF(a1, b1, q.alpha[j], q.beta[j])
			}
			if kl < best {
				best = kl
			}
		}
		out[e] = best
	}
	return out
}

func softplusF(x float64) float64 {
	if x > 30 {
		return x
	}
	return math.Log1p(math.Exp(x))
}

func betaKLF(a1, b1, a2, b2 float64) float64 {
	lb2, _ := math.Lgamma(a2)
	t2, _ := math.Lgamma(b2)
	s2, _ := math.Lgamma(a2 + b2)
	lb1, _ := math.Lgamma(a1)
	t1, _ := math.Lgamma(b1)
	s1, _ := math.Lgamma(a1 + b1)
	logBeta2 := lb2 + t2 - s2
	logBeta1 := lb1 + t1 - s1
	return logBeta2 - logBeta1 +
		(a1-a2)*autodiff.Digamma(a1) +
		(b1-b2)*autodiff.Digamma(b1) +
		(a2-a1+b2-b1)*autodiff.Digamma(a1+b1)
}
