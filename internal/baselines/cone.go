package baselines

import (
	"math"
	"math/rand"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/geometry"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// ConE embeds queries as sector cones (axis angle θ, aperture α) per
// dimension on the rotation backbone. Characteristic limitations kept
// from the original model (and called out by HaLk Sec. III-G):
//
//   - projection learns axis and aperture with decoupled heads (no
//     start/end coupling), leaving the center/cardinality semantic gap;
//   - intersection averages axis angles directly in angle space, which
//     is periodicity-unsafe;
//   - negation is the pure linear complement (θ±π, 2π−α) with no
//     corrective network;
//   - the distance uses the wrapped angular offset as a magnitude, so a
//     point just clockwise of the axis can be measured almost a full
//     turn away — the "duality" issue HaLk's chord distance removes.
//
// No difference operator: Supports rejects difference structures.
type ConE struct {
	cfg    Config
	graph  *kg.Graph
	params *autodiff.Params

	ent  *autodiff.Tensor // entity axis angles, n × d
	relC *autodiff.Tensor // relation rotations, m × d
	relA *autodiff.Tensor // relation aperture increments, m × d

	projC, projA         *autodiff.MLP // decoupled projection heads
	interAtt             *autodiff.MLP
	interInner, interOut *autodiff.MLP
}

var _ model.Interface = (*ConE)(nil)

// cone is the on-tape embedding: axis angles and apertures.
type cone struct {
	axis autodiff.V
	ap   autodiff.V
}

// NewConE builds a ConE model over the training graph.
func NewConE(g *kg.Graph, cfg Config) *ConE {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := autodiff.NewParams()
	d, h := cfg.Dim, cfg.Hidden
	return &ConE{
		cfg:    cfg,
		graph:  g,
		params: p,
		ent:    p.NewUniform("entity", g.NumEntities(), d, 0, geometry.TwoPi, rng),
		relC:   p.NewUniform("relation.rot", g.NumRelations(), d, 0, geometry.TwoPi, rng),
		relA:   p.NewUniform("relation.ap", g.NumRelations(), d, 0, 0.5, rng),

		projC:      autodiff.NewMLP(p, "proj.axis", []int{d, h, d}, rng),
		projA:      autodiff.NewMLP(p, "proj.ap", []int{d, h, d}, rng),
		interAtt:   autodiff.NewMLP(p, "inter.att", []int{2 * d, h, d}, rng),
		interInner: autodiff.NewMLP(p, "inter.inner", []int{2 * d, h}, rng),
		interOut:   autodiff.NewMLP(p, "inter.out", []int{h, d}, rng),
	}
}

// Name implements model.Interface.
func (c *ConE) Name() string { return "ConE" }

// Params implements model.Interface.
func (c *ConE) Params() *autodiff.Params { return c.params }

// Supports implements model.Interface: every structure without a
// difference operator.
func (c *ConE) Supports(structure string) bool { return !query.UsesDifference(structure) }

func (c *ConE) g(t *autodiff.Tape, x autodiff.V) autodiff.V {
	return t.AddScalar(t.Scale(t.Tanh(x), math.Pi), math.Pi)
}

func (c *ConE) embed(t *autodiff.Tape, n *query.Node) cone {
	switch n.Op {
	case query.OpAnchor:
		return cone{
			axis: c.ent.Leaf(t, int(n.Anchor)),
			ap:   t.Const(make([]float64, c.cfg.Dim)),
		}
	case query.OpProjection:
		in := c.embed(t, n.Args[0])
		ax := t.Add(in.axis, c.relC.Leaf(t, int(n.Rel)))
		ap := t.Add(in.ap, c.relA.Leaf(t, int(n.Rel)))
		// Decoupled refinement heads: axis sees only the axis, aperture
		// only the aperture.
		return cone{
			axis: c.g(t, c.projC.Forward(t, ax)),
			ap:   c.g(t, c.projA.Forward(t, ap)),
		}
	case query.OpIntersection:
		kids := make([]cone, len(n.Args))
		for i, a := range n.Args {
			kids[i] = c.embed(t, a)
		}
		return c.intersect(t, kids)
	case query.OpNegation:
		in := c.embed(t, n.Args[0])
		// Linear complement: axis rotated by π, aperture complemented.
		shift := make([]float64, in.axis.Len())
		for j, v := range in.axis.Value() {
			if geometry.Wrap(v) < math.Pi {
				shift[j] = math.Pi
			} else {
				shift[j] = -math.Pi
			}
		}
		return cone{
			axis: t.Add(in.axis, t.Const(shift)),
			ap:   t.AddScalar(t.Neg(in.ap), geometry.TwoPi),
		}
	case query.OpDifference:
		panic("baselines: ConE does not support the difference operator")
	case query.OpUnion:
		panic("baselines: embed on union node; rewrite with query.DNF first")
	}
	panic("baselines: ConE embed: unknown op")
}

func (c *ConE) intersect(t *autodiff.Tape, kids []cone) cone {
	scores := make([]autodiff.V, len(kids))
	for i, k := range kids {
		scores[i] = c.interAtt.Forward(t, t.Concat(k.axis, k.ap))
	}
	w := t.SoftmaxStack(scores)
	// Raw angle-space weighted average: periodicity-unsafe by design.
	var axis autodiff.V
	for i, k := range kids {
		term := t.Mul(w[i], k.axis)
		if i == 0 {
			axis = term
		} else {
			axis = t.Add(axis, term)
		}
	}
	inners := make([]autodiff.V, len(kids))
	aps := make([]autodiff.V, len(kids))
	for i, k := range kids {
		inners[i] = c.interInner.Forward(t, t.Concat(k.axis, k.ap))
		aps[i] = k.ap
	}
	ds := c.interOut.Forward(t, t.MeanStack(inners))
	ap := t.Mul(t.MinStack(aps), t.Sigmoid(ds))
	return cone{axis: axis, ap: ap}
}

// distance builds the differentiable cone distance with the wrapped
// offset treated as a magnitude (the duality flaw).
func (c *ConE) distance(t *autodiff.Tape, point autodiff.V, q cone) autodiff.V {
	delta := t.Sub(point, q.axis)
	// Wrap into [0, 2π) with a piecewise-constant shift.
	shift := make([]float64, delta.Len())
	for j, v := range delta.Value() {
		shift[j] = geometry.Wrap(v) - v
	}
	wrapped := t.Add(delta, t.Const(shift))
	half := t.Scale(q.ap, 0.5)
	do := t.Relu(t.Sub(wrapped, half))
	di := t.Min(wrapped, half)
	return t.Add(t.Sum(do), t.Scale(t.Sum(di), c.cfg.Eta))
}

// Loss implements model.Interface.
func (c *ConE) Loss(t *autodiff.Tape, q *query.Query, negSamples int, rng *rand.Rand) (autodiff.V, bool) {
	pos, negs, ok := samplePosNegs(q, c.graph.NumEntities(), negSamples, rng)
	if !ok {
		return autodiff.V{}, false
	}
	disjuncts := query.DNF(q.Root)
	cones := make([]cone, len(disjuncts))
	for i, d := range disjuncts {
		cones[i] = c.embed(t, d)
	}
	score := func(e kg.EntityID) autodiff.V {
		pt := c.ent.Leaf(t, int(e))
		per := make([]autodiff.V, len(cones))
		for i, cn := range cones {
			per[i] = c.distance(t, pt, cn)
		}
		return minScalar(t, per)
	}
	negScores := make([]autodiff.V, len(negs))
	for i, ne := range negs {
		negScores[i] = score(ne)
	}
	return marginLoss(t, c.cfg.Gamma, score(pos), negScores), true
}

// Distances implements model.Interface.
func (c *ConE) Distances(n *query.Node) []float64 {
	t := autodiff.NewTape()
	disjuncts := query.DNF(n)
	type vcone struct{ axis, ap []float64 }
	cones := make([]vcone, len(disjuncts))
	for i, d := range disjuncts {
		cn := c.embed(t, d)
		cones[i] = vcone{
			axis: append([]float64(nil), cn.axis.Value()...),
			ap:   append([]float64(nil), cn.ap.Value()...),
		}
	}
	out := make([]float64, c.graph.NumEntities())
	for e := range out {
		pt := c.ent.Row(e)
		best := math.Inf(1)
		for _, cn := range cones {
			d := 0.0
			for j := range pt {
				w := geometry.Wrap(pt[j] - cn.axis[j])
				half := cn.ap[j] / 2
				if w > half {
					d += w - half
				}
				d += c.cfg.Eta * math.Min(w, half)
			}
			if d < best {
				best = d
			}
		}
		out[e] = best
	}
	return out
}
