package baselines

import (
	"math"
	"math/rand"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// NewLook embeds queries as axis-aligned hyper-rectangles (center,
// non-negative offset) in ℝ^d, the Query2Box lineage extended with a
// difference operator. Characteristic properties kept from the original
// (HaLk Sec. I and Sec. III-C):
//
//   - the difference region of two overlapping boxes is not a box, so
//     the learned output box necessarily admits false positives or false
//     negatives (the "fixed-lossy" problem);
//   - overlap for the difference operator is measured with raw value
//     differences (fine for boxes, not transferable to rotations);
//   - projection refines center and offset with decoupled heads;
//   - no negation operator and no universal set: Supports rejects
//     negation structures and the model cannot express one-hop negative
//     queries at all.
type NewLook struct {
	cfg    Config
	graph  *kg.Graph
	params *autodiff.Params

	ent  *autodiff.Tensor // entity points, n × d
	relC *autodiff.Tensor // relation translations, m × d
	relO *autodiff.Tensor // relation offset increments, m × d

	projC, projO         *autodiff.MLP
	interAtt             *autodiff.MLP
	interInner, interOut *autodiff.MLP
	diffAtt              *autodiff.MLP
	diffInner, diffOut   *autodiff.MLP
}

var _ model.Interface = (*NewLook)(nil)

type box struct {
	center autodiff.V
	offset autodiff.V // kept non-negative by construction
}

// NewNewLook builds a NewLook model over the training graph.
func NewNewLook(g *kg.Graph, cfg Config) *NewLook {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := autodiff.NewParams()
	d, h := cfg.Dim, cfg.Hidden
	return &NewLook{
		cfg:    cfg,
		graph:  g,
		params: p,
		ent:    p.NewUniform("entity", g.NumEntities(), d, -1, 1, rng),
		relC:   p.NewUniform("relation.center", g.NumRelations(), d, -0.5, 0.5, rng),
		relO:   p.NewUniform("relation.offset", g.NumRelations(), d, 0, 0.3, rng),

		projC:      autodiff.NewMLP(p, "proj.center", []int{d, h, d}, rng),
		projO:      autodiff.NewMLP(p, "proj.offset", []int{d, h, d}, rng),
		interAtt:   autodiff.NewMLP(p, "inter.att", []int{2 * d, h, d}, rng),
		interInner: autodiff.NewMLP(p, "inter.inner", []int{2 * d, h}, rng),
		interOut:   autodiff.NewMLP(p, "inter.out", []int{h, d}, rng),
		diffAtt:    autodiff.NewMLP(p, "diff.att", []int{2 * d, h, d}, rng),
		diffInner:  autodiff.NewMLP(p, "diff.inner", []int{2 * d, h}, rng),
		diffOut:    autodiff.NewMLP(p, "diff.out", []int{h, d}, rng),
	}
}

// Name implements model.Interface.
func (nl *NewLook) Name() string { return "NewLook" }

// Params implements model.Interface.
func (nl *NewLook) Params() *autodiff.Params { return nl.params }

// Supports implements model.Interface: every structure without negation.
func (nl *NewLook) Supports(structure string) bool { return !query.UsesNegation(structure) }

func (nl *NewLook) embed(t *autodiff.Tape, n *query.Node) box {
	switch n.Op {
	case query.OpAnchor:
		return box{
			center: nl.ent.Leaf(t, int(n.Anchor)),
			offset: t.Const(make([]float64, nl.cfg.Dim)),
		}
	case query.OpProjection:
		in := nl.embed(t, n.Args[0])
		c := t.Add(in.center, nl.relC.Leaf(t, int(n.Rel)))
		o := t.Add(in.offset, t.Relu(nl.relO.Leaf(t, int(n.Rel))))
		// Decoupled refinement: residual center head, offset head.
		c = t.Add(c, nl.projC.Forward(t, c))
		o = t.Relu(t.Add(o, nl.projO.Forward(t, o)))
		return box{center: c, offset: o}
	case query.OpIntersection:
		kids := nl.embedAll(t, n.Args)
		scores := make([]autodiff.V, len(kids))
		inners := make([]autodiff.V, len(kids))
		offs := make([]autodiff.V, len(kids))
		for i, k := range kids {
			cat := t.Concat(k.center, k.offset)
			scores[i] = nl.interAtt.Forward(t, cat)
			inners[i] = nl.interInner.Forward(t, cat)
			offs[i] = k.offset
		}
		w := t.SoftmaxStack(scores)
		var c autodiff.V
		for i, k := range kids {
			term := t.Mul(w[i], k.center)
			if i == 0 {
				c = term
			} else {
				c = t.Add(c, term)
			}
		}
		ds := nl.interOut.Forward(t, t.MeanStack(inners))
		o := t.Mul(t.MinStack(offs), t.Sigmoid(ds))
		return box{center: c, offset: o}
	case query.OpDifference:
		kids := nl.embedAll(t, n.Args)
		// Attention over centers biased toward the minuend via a fixed
		// doubling of its score (NewLook's asymmetric attention).
		scores := make([]autodiff.V, len(kids))
		for i, k := range kids {
			s := nl.diffAtt.Forward(t, t.Concat(k.center, k.offset))
			if i == 0 {
				s = t.Scale(s, 2)
			}
			scores[i] = s
		}
		w := t.SoftmaxStack(scores)
		var c autodiff.V
		for i, k := range kids {
			term := t.Mul(w[i], k.center)
			if i == 0 {
				c = term
			} else {
				c = t.Add(c, term)
			}
		}
		// Raw-value overlap inputs; offset shrunk from the minuend.
		first := kids[0]
		inners := make([]autodiff.V, 0, len(kids)-1)
		for _, k := range kids[1:] {
			dc := t.Sub(first.center, k.center)
			do := t.Sub(first.offset, k.offset)
			inners = append(inners, nl.diffInner.Forward(t, t.Concat(dc, do)))
		}
		ds := nl.diffOut.Forward(t, t.MeanStack(inners))
		o := t.Mul(first.offset, t.Sigmoid(ds))
		return box{center: c, offset: o}
	case query.OpNegation:
		panic("baselines: NewLook does not support the negation operator")
	case query.OpUnion:
		panic("baselines: embed on union node; rewrite with query.DNF first")
	}
	panic("baselines: NewLook embed: unknown op")
}

func (nl *NewLook) embedAll(t *autodiff.Tape, ns []*query.Node) []box {
	out := make([]box, len(ns))
	for i, n := range ns {
		out[i] = nl.embed(t, n)
	}
	return out
}

// distance is the Query2Box box distance: dist_out + η·dist_in.
func (nl *NewLook) distance(t *autodiff.Tape, point autodiff.V, b box) autodiff.V {
	diff := t.Abs(t.Sub(point, b.center))
	do := t.Relu(t.Sub(diff, b.offset))
	di := t.Min(diff, b.offset)
	return t.Add(t.Sum(do), t.Scale(t.Sum(di), nl.cfg.Eta))
}

// Loss implements model.Interface.
func (nl *NewLook) Loss(t *autodiff.Tape, q *query.Query, negSamples int, rng *rand.Rand) (autodiff.V, bool) {
	pos, negs, ok := samplePosNegs(q, nl.graph.NumEntities(), negSamples, rng)
	if !ok {
		return autodiff.V{}, false
	}
	disjuncts := query.DNF(q.Root)
	boxes := make([]box, len(disjuncts))
	for i, d := range disjuncts {
		boxes[i] = nl.embed(t, d)
	}
	score := func(e kg.EntityID) autodiff.V {
		pt := nl.ent.Leaf(t, int(e))
		per := make([]autodiff.V, len(boxes))
		for i, b := range boxes {
			per[i] = nl.distance(t, pt, b)
		}
		return minScalar(t, per)
	}
	negScores := make([]autodiff.V, len(negs))
	for i, ne := range negs {
		negScores[i] = score(ne)
	}
	return marginLoss(t, nl.cfg.Gamma, score(pos), negScores), true
}

// Distances implements model.Interface.
func (nl *NewLook) Distances(n *query.Node) []float64 {
	t := autodiff.NewTape()
	disjuncts := query.DNF(n)
	type vbox struct{ c, o []float64 }
	boxes := make([]vbox, len(disjuncts))
	for i, d := range disjuncts {
		b := nl.embed(t, d)
		boxes[i] = vbox{
			c: append([]float64(nil), b.center.Value()...),
			o: append([]float64(nil), b.offset.Value()...),
		}
	}
	out := make([]float64, nl.graph.NumEntities())
	for e := range out {
		pt := nl.ent.Row(e)
		best := math.Inf(1)
		for _, b := range boxes {
			d := 0.0
			for j := range pt {
				diff := math.Abs(pt[j] - b.c[j])
				if diff > b.o[j] {
					d += diff - b.o[j]
				}
				d += nl.cfg.Eta * math.Min(diff, b.o[j])
			}
			if d < best {
				best = d
			}
		}
		out[e] = best
	}
	return out
}
