// Package baselines reimplements the three state-of-the-art competitors
// of the paper's evaluation (Sec. IV-A) from their published equations,
// on the shared autodiff substrate and trainer interface:
//
//   - ConE (Zhang et al., NeurIPS 2021): cone embeddings on the rotation
//     backbone; supports negation via the linear-transformation
//     assumption; no difference operator; its distance uses raw wrapped
//     angle offsets, exposing the periodicity "duality" HaLk's chord
//     measurement avoids.
//   - NewLook (Liu et al., KDD 2021): box embeddings; supports the
//     difference operator (lossily — a box cannot represent the exact
//     difference region) but has no negation and no universal set.
//   - MLPMix (Amayuelas et al., ICLR 2022): non-geometric pure-MLP
//     query embeddings; negation via linear transformation; no
//     difference operator and no cardinality modelling.
//
// Each model keeps its defining limitation because those limitations are
// exactly what the paper's comparisons measure.
package baselines

import (
	"math/rand"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// Config holds the hyper-parameters shared by the baseline models.
type Config struct {
	// Dim is the embedding dimensionality.
	Dim int
	// Hidden is the operator MLP width.
	Hidden int
	// Gamma is the loss margin.
	Gamma float64
	// Eta down-weights inside distances for the geometric models.
	Eta float64
	// Seed drives parameter initialisation.
	Seed int64
}

// DefaultConfig mirrors the scaled-down budget of halk.DefaultConfig so
// comparisons are parameter-fair.
func DefaultConfig(seed int64) Config {
	return Config{Dim: 64, Hidden: 64, Gamma: 2, Eta: 0.02, Seed: seed}
}

// marginLoss assembles the shared negative-sampling objective
// −log σ(γ−d⁺) − (1/m) Σ log σ(d⁻−γ) used by all models in this family.
func marginLoss(t *autodiff.Tape, gamma float64, pos autodiff.V, negs []autodiff.V) autodiff.V {
	loss := t.Neg(t.LogSigmoid(t.AddScalar(t.Neg(pos), gamma)))
	for _, n := range negs {
		nl := t.Neg(t.LogSigmoid(t.AddScalar(n, -gamma)))
		loss = t.Add(loss, t.Scale(nl, 1/float64(len(negs))))
	}
	return loss
}

// samplePosNegs draws one positive and m negatives for a query instance.
func samplePosNegs(q *query.Query, numEntities, m int, rng *rand.Rand) (kg.EntityID, []kg.EntityID, bool) {
	pos, ok := model.SamplePositive(q.Answers, rng)
	if !ok {
		return 0, nil, false
	}
	negs := model.SampleNegatives(q.Answers, numEntities, m, rng)
	if len(negs) == 0 {
		return 0, nil, false
	}
	return pos, negs, true
}

// minScalar folds per-disjunct scalar scores with an elementwise min,
// the DNF aggregation rule.
func minScalar(t *autodiff.Tape, scores []autodiff.V) autodiff.V {
	best := scores[0]
	for _, s := range scores[1:] {
		best = t.Min(best, s)
	}
	return best
}
