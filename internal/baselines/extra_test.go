package baselines

import (
	"math"
	"math/rand"
	"testing"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// extraModels are the first/second-group reference baselines beyond the
// paper's three headline competitors.
func extraModels(seed int64) []model.Interface {
	ds := testDataset(seed)
	cfg := testConfig(seed)
	return []model.Interface{
		NewQuery2Box(ds.Train, cfg),
		NewGQE(ds.Train, cfg),
		NewBetaE(ds.Train, cfg),
	}
}

func TestExtraModelSupports(t *testing.T) {
	ms := extraModels(1)
	q2b, gqe, betae := ms[0], ms[1], ms[2]
	// Q2B and GQE: EPFO only.
	for _, m := range []model.Interface{q2b, gqe} {
		for _, s := range []string{"1p", "2p", "2i", "3i", "ip", "pi", "2u", "up"} {
			if !m.Supports(s) {
				t.Errorf("%s should support %s", m.Name(), s)
			}
		}
		for _, s := range []string{"2in", "pni", "2d", "dp"} {
			if m.Supports(s) {
				t.Errorf("%s should not support %s", m.Name(), s)
			}
		}
	}
	// BetaE: negation yes, difference no.
	if !betae.Supports("2in") || !betae.Supports("pni") || betae.Supports("2d") {
		t.Error("BetaE structure support wrong")
	}
	names := []string{"Query2Box", "GQE", "BetaE"}
	for i, m := range ms {
		if m.Name() != names[i] {
			t.Errorf("model %d name = %q, want %q", i, m.Name(), names[i])
		}
	}
}

func TestExtraModelLossAndGradients(t *testing.T) {
	ds := testDataset(2)
	rng := rand.New(rand.NewSource(3))
	for _, m := range extraModels(2) {
		for _, structure := range []string{"1p", "2p", "2i", "2u", "2in"} {
			if !m.Supports(structure) {
				continue
			}
			w := query.Workload(structure, 1, ds.Train, ds.Train, rng)
			if len(w) == 0 {
				t.Fatalf("%s/%s: no queries", m.Name(), structure)
			}
			tape := autodiff.NewTape()
			loss, ok := m.Loss(tape, &w[0], 4, rng)
			if !ok {
				t.Fatalf("%s/%s: loss not ok", m.Name(), structure)
			}
			lv := loss.Value()[0]
			if math.IsNaN(lv) || math.IsInf(lv, 0) || lv < 0 {
				t.Fatalf("%s/%s: loss = %g", m.Name(), structure, lv)
			}
			m.Params().ZeroGrad()
			tape.Backward(loss)
			ent := m.Params().Get("entity")
			nonzero := false
			for _, g := range ent.Grad {
				if g != 0 {
					nonzero = true
					break
				}
			}
			if !nonzero {
				t.Fatalf("%s/%s: no entity gradient", m.Name(), structure)
			}
		}
	}
}

func TestExtraModelDistances(t *testing.T) {
	ds := testDataset(4)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(5)))
	for _, m := range extraModels(4) {
		for _, structure := range []string{"1p", "2i", "2u"} {
			q, ok := s.Sample(structure)
			if !ok {
				t.Fatalf("sampling %s failed", structure)
			}
			d := m.Distances(q)
			if len(d) != ds.Train.NumEntities() {
				t.Fatalf("%s: %d distances", m.Name(), len(d))
			}
			for _, v := range d {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s/%s: bad distance %g", m.Name(), structure, v)
				}
			}
		}
	}
}

func TestBetaENegationReciprocal(t *testing.T) {
	ds := testDataset(6)
	be := NewBetaE(ds.Train, testConfig(6))
	tape := autodiff.NewTape()
	in := be.embed(tape, query.NewProjection(0, query.NewAnchor(1)))
	out := be.embed(tape, query.NewNegation(query.NewProjection(0, query.NewAnchor(1))))
	for j := range in.alpha.Value() {
		if math.Abs(out.alpha.Value()[j]*in.alpha.Value()[j]-1) > 1e-9 {
			t.Fatalf("dim %d: negation is not the parameter reciprocal", j)
		}
		if math.Abs(out.beta.Value()[j]*in.beta.Value()[j]-1) > 1e-9 {
			t.Fatalf("dim %d: beta reciprocal broken", j)
		}
	}
}

func TestBetaEParamsStrictlyPositive(t *testing.T) {
	ds := testDataset(7)
	be := NewBetaE(ds.Train, testConfig(7))
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(8)))
	for _, structure := range []string{"1p", "2p", "2i", "2in", "pni"} {
		q, ok := s.Sample(structure)
		if !ok {
			t.Fatalf("sampling %s failed", structure)
		}
		tape := autodiff.NewTape()
		for _, d := range query.DNF(q) {
			bd := be.embed(tape, d)
			for j, a := range bd.alpha.Value() {
				if a <= 0 || bd.beta.Value()[j] <= 0 {
					t.Fatalf("%s: non-positive Beta parameter at dim %d", structure, j)
				}
			}
		}
	}
}

func TestExtraModelTrainingRuns(t *testing.T) {
	ds := testDataset(9)
	for _, m := range extraModels(9) {
		res, err := model.Train(m, ds.Train, model.TrainConfig{
			QueriesPerStructure: 15,
			Steps:               30,
			BatchSize:           4,
			NegSamples:          4,
			LR:                  0.01,
			Seed:                10,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if math.IsNaN(res.FinalLoss) {
			t.Fatalf("%s: NaN loss", m.Name())
		}
	}
}
