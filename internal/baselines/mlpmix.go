package baselines

import (
	"math"
	"math/rand"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// MLPMix is the non-geometric baseline: a query is a free vector in ℝ^d
// and every operator is a plain MLP block. Characteristic properties
// kept from the original (HaLk Sec. II-C / IV-B):
//
//   - no geometric structure at all, hence no way to model answer-set
//     cardinality — the reason the paper finds geometry-based methods
//     dominate it;
//   - negation is a single linear layer (the linear-transformation
//     assumption);
//   - no difference operator.
type MLPMix struct {
	cfg    Config
	graph  *kg.Graph
	params *autodiff.Params

	ent *autodiff.Tensor // entity vectors, n × d
	rel *autodiff.Tensor // relation vectors, m × d

	proj                 *autodiff.MLP // [q ‖ r] -> q'
	interInner, interOut *autodiff.MLP
	negW                 *autodiff.Tensor // linear negation weight, d × d
	negB                 *autodiff.Tensor // linear negation bias, 1 × d
}

var _ model.Interface = (*MLPMix)(nil)

// NewMLPMix builds an MLPMix model over the training graph.
func NewMLPMix(g *kg.Graph, cfg Config) *MLPMix {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := autodiff.NewParams()
	d, h := cfg.Dim, cfg.Hidden
	return &MLPMix{
		cfg:    cfg,
		graph:  g,
		params: p,
		ent:    p.NewUniform("entity", g.NumEntities(), d, -1, 1, rng),
		rel:    p.NewUniform("relation", g.NumRelations(), d, -1, 1, rng),

		proj:       autodiff.NewMLP(p, "proj", []int{2 * d, h, d}, rng),
		interInner: autodiff.NewMLP(p, "inter.inner", []int{d, h}, rng),
		interOut:   autodiff.NewMLP(p, "inter.out", []int{h, d}, rng),
		negW:       p.NewXavier("neg.w", d, d, rng),
		negB:       p.New("neg.b", 1, d),
	}
}

// Name implements model.Interface.
func (mm *MLPMix) Name() string { return "MLPMix" }

// Params implements model.Interface.
func (mm *MLPMix) Params() *autodiff.Params { return mm.params }

// Supports implements model.Interface: every structure without a
// difference operator.
func (mm *MLPMix) Supports(structure string) bool { return !query.UsesDifference(structure) }

func (mm *MLPMix) embed(t *autodiff.Tape, n *query.Node) autodiff.V {
	switch n.Op {
	case query.OpAnchor:
		return mm.ent.Leaf(t, int(n.Anchor))
	case query.OpProjection:
		in := mm.embed(t, n.Args[0])
		r := mm.rel.Leaf(t, int(n.Rel))
		return mm.proj.Forward(t, t.Concat(in, r))
	case query.OpIntersection:
		inners := make([]autodiff.V, len(n.Args))
		for i, a := range n.Args {
			inners[i] = mm.interInner.Forward(t, mm.embed(t, a))
		}
		return mm.interOut.Forward(t, t.MeanStack(inners))
	case query.OpNegation:
		in := mm.embed(t, n.Args[0])
		w := mm.negW.LeafAll(t)
		b := mm.negB.LeafAll(t)
		return t.MatVec(w, in, b, mm.cfg.Dim, mm.cfg.Dim)
	case query.OpDifference:
		panic("baselines: MLPMix does not support the difference operator")
	case query.OpUnion:
		panic("baselines: embed on union node; rewrite with query.DNF first")
	}
	panic("baselines: MLPMix embed: unknown op")
}

// Loss implements model.Interface: L1 distance in the free vector space.
func (mm *MLPMix) Loss(t *autodiff.Tape, q *query.Query, negSamples int, rng *rand.Rand) (autodiff.V, bool) {
	pos, negs, ok := samplePosNegs(q, mm.graph.NumEntities(), negSamples, rng)
	if !ok {
		return autodiff.V{}, false
	}
	disjuncts := query.DNF(q.Root)
	embs := make([]autodiff.V, len(disjuncts))
	for i, d := range disjuncts {
		embs[i] = mm.embed(t, d)
	}
	score := func(e kg.EntityID) autodiff.V {
		pt := mm.ent.Leaf(t, int(e))
		per := make([]autodiff.V, len(embs))
		for i, q := range embs {
			per[i] = t.L1(t.Sub(pt, q))
		}
		return minScalar(t, per)
	}
	negScores := make([]autodiff.V, len(negs))
	for i, ne := range negs {
		negScores[i] = score(ne)
	}
	return marginLoss(t, mm.cfg.Gamma, score(pos), negScores), true
}

// Distances implements model.Interface.
func (mm *MLPMix) Distances(n *query.Node) []float64 {
	t := autodiff.NewTape()
	disjuncts := query.DNF(n)
	embs := make([][]float64, len(disjuncts))
	for i, d := range disjuncts {
		embs[i] = append([]float64(nil), mm.embed(t, d).Value()...)
	}
	out := make([]float64, mm.graph.NumEntities())
	for e := range out {
		pt := mm.ent.Row(e)
		best := math.Inf(1)
		for _, q := range embs {
			d := 0.0
			for j := range pt {
				d += math.Abs(pt[j] - q[j])
			}
			if d < best {
				best = d
			}
		}
		out[e] = best
	}
	return out
}
