package baselines

import (
	"math"
	"math/rand"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// Query2Box (Ren, Hu & Leskovec, ICLR 2020) is the original box-embedding
// model NewLook extends: queries are axis-aligned boxes, entities points.
// It belongs to the paper's first group — existential positive first-order
// queries only: projection and intersection (plus exact union via DNF),
// no negation and no difference. Kept in this repository as a reference
// point beyond the paper's three headline baselines.
//
// Projection translates center and grows offset per relation;
// intersection takes an attention-weighted center and a DeepSets-gated
// minimum offset, as in the original paper.
type Query2Box struct {
	cfg    Config
	graph  *kg.Graph
	params *autodiff.Params

	ent  *autodiff.Tensor
	relC *autodiff.Tensor
	relO *autodiff.Tensor

	interAtt             *autodiff.MLP
	interInner, interOut *autodiff.MLP
}

var _ model.Interface = (*Query2Box)(nil)

// NewQuery2Box builds a Query2Box model over the training graph.
func NewQuery2Box(g *kg.Graph, cfg Config) *Query2Box {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := autodiff.NewParams()
	d, h := cfg.Dim, cfg.Hidden
	return &Query2Box{
		cfg:    cfg,
		graph:  g,
		params: p,
		ent:    p.NewUniform("entity", g.NumEntities(), d, -1, 1, rng),
		relC:   p.NewUniform("relation.center", g.NumRelations(), d, -0.5, 0.5, rng),
		relO:   p.NewUniform("relation.offset", g.NumRelations(), d, 0, 0.3, rng),

		interAtt:   autodiff.NewMLP(p, "inter.att", []int{2 * d, h, d}, rng),
		interInner: autodiff.NewMLP(p, "inter.inner", []int{2 * d, h}, rng),
		interOut:   autodiff.NewMLP(p, "inter.out", []int{h, d}, rng),
	}
}

// Name implements model.Interface.
func (qb *Query2Box) Name() string { return "Query2Box" }

// Params implements model.Interface.
func (qb *Query2Box) Params() *autodiff.Params { return qb.params }

// Supports implements model.Interface: EPFO only.
func (qb *Query2Box) Supports(structure string) bool {
	return !query.UsesNegation(structure) && !query.UsesDifference(structure)
}

func (qb *Query2Box) embed(t *autodiff.Tape, n *query.Node) box {
	switch n.Op {
	case query.OpAnchor:
		return box{
			center: qb.ent.Leaf(t, int(n.Anchor)),
			offset: t.Const(make([]float64, qb.cfg.Dim)),
		}
	case query.OpProjection:
		in := qb.embed(t, n.Args[0])
		return box{
			center: t.Add(in.center, qb.relC.Leaf(t, int(n.Rel))),
			offset: t.Add(in.offset, t.Relu(qb.relO.Leaf(t, int(n.Rel)))),
		}
	case query.OpIntersection:
		kids := make([]box, len(n.Args))
		scores := make([]autodiff.V, len(n.Args))
		inners := make([]autodiff.V, len(n.Args))
		offs := make([]autodiff.V, len(n.Args))
		for i, a := range n.Args {
			kids[i] = qb.embed(t, a)
			cat := t.Concat(kids[i].center, kids[i].offset)
			scores[i] = qb.interAtt.Forward(t, cat)
			inners[i] = qb.interInner.Forward(t, cat)
			offs[i] = kids[i].offset
		}
		w := t.SoftmaxStack(scores)
		var c autodiff.V
		for i, k := range kids {
			term := t.Mul(w[i], k.center)
			if i == 0 {
				c = term
			} else {
				c = t.Add(c, term)
			}
		}
		ds := qb.interOut.Forward(t, t.MeanStack(inners))
		return box{center: c, offset: t.Mul(t.MinStack(offs), t.Sigmoid(ds))}
	case query.OpNegation:
		panic("baselines: Query2Box does not support the negation operator")
	case query.OpDifference:
		panic("baselines: Query2Box does not support the difference operator")
	case query.OpUnion:
		panic("baselines: embed on union node; rewrite with query.DNF first")
	}
	panic("baselines: Query2Box embed: unknown op")
}

func (qb *Query2Box) distance(t *autodiff.Tape, point autodiff.V, b box) autodiff.V {
	diff := t.Abs(t.Sub(point, b.center))
	do := t.Relu(t.Sub(diff, b.offset))
	di := t.Min(diff, b.offset)
	return t.Add(t.Sum(do), t.Scale(t.Sum(di), qb.cfg.Eta))
}

// Loss implements model.Interface.
func (qb *Query2Box) Loss(t *autodiff.Tape, q *query.Query, negSamples int, rng *rand.Rand) (autodiff.V, bool) {
	pos, negs, ok := samplePosNegs(q, qb.graph.NumEntities(), negSamples, rng)
	if !ok {
		return autodiff.V{}, false
	}
	disjuncts := query.DNF(q.Root)
	boxes := make([]box, len(disjuncts))
	for i, d := range disjuncts {
		boxes[i] = qb.embed(t, d)
	}
	score := func(e kg.EntityID) autodiff.V {
		pt := qb.ent.Leaf(t, int(e))
		per := make([]autodiff.V, len(boxes))
		for i, b := range boxes {
			per[i] = qb.distance(t, pt, b)
		}
		return minScalar(t, per)
	}
	negScores := make([]autodiff.V, len(negs))
	for i, ne := range negs {
		negScores[i] = score(ne)
	}
	return marginLoss(t, qb.cfg.Gamma, score(pos), negScores), true
}

// Distances implements model.Interface.
func (qb *Query2Box) Distances(n *query.Node) []float64 {
	t := autodiff.NewTape()
	disjuncts := query.DNF(n)
	type vbox struct{ c, o []float64 }
	boxes := make([]vbox, len(disjuncts))
	for i, d := range disjuncts {
		b := qb.embed(t, d)
		boxes[i] = vbox{
			c: append([]float64(nil), b.center.Value()...),
			o: append([]float64(nil), b.offset.Value()...),
		}
	}
	out := make([]float64, qb.graph.NumEntities())
	for e := range out {
		pt := qb.ent.Row(e)
		best := math.Inf(1)
		for _, b := range boxes {
			d := 0.0
			for j := range pt {
				diff := math.Abs(pt[j] - b.c[j])
				if diff > b.o[j] {
					d += diff - b.o[j]
				}
				d += qb.cfg.Eta * math.Min(diff, b.o[j])
			}
			if d < best {
				best = d
			}
		}
		out[e] = best
	}
	return out
}
