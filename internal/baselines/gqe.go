package baselines

import (
	"math"
	"math/rand"

	"github.com/halk-kg/halk/internal/autodiff"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

// GQE (Hamilton et al., NeurIPS 2018 — "Embedding logical queries on
// knowledge graphs") is the earliest embedding-based query answerer and
// the paper's representative of the first group: each query is a single
// vector, projection is a relation-specific diagonal bilinear transform,
// and intersection is a permutation-invariant DeepSets aggregation. EPFO
// only (projection, intersection; exact union via DNF), with no
// cardinality modelling at all.
type GQE struct {
	cfg    Config
	graph  *kg.Graph
	params *autodiff.Params

	ent  *autodiff.Tensor
	relW *autodiff.Tensor // per-relation diagonal transform
	relB *autodiff.Tensor // per-relation translation

	interInner, interOut *autodiff.MLP
}

var _ model.Interface = (*GQE)(nil)

// NewGQE builds a GQE model over the training graph.
func NewGQE(g *kg.Graph, cfg Config) *GQE {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := autodiff.NewParams()
	d, h := cfg.Dim, cfg.Hidden
	return &GQE{
		cfg:    cfg,
		graph:  g,
		params: p,
		ent:    p.NewUniform("entity", g.NumEntities(), d, -1, 1, rng),
		relW:   p.NewUniform("relation.diag", g.NumRelations(), d, 0.5, 1.5, rng),
		relB:   p.NewUniform("relation.bias", g.NumRelations(), d, -0.5, 0.5, rng),

		interInner: autodiff.NewMLP(p, "inter.inner", []int{d, h}, rng),
		interOut:   autodiff.NewMLP(p, "inter.out", []int{h, d}, rng),
	}
}

// Name implements model.Interface.
func (gq *GQE) Name() string { return "GQE" }

// Params implements model.Interface.
func (gq *GQE) Params() *autodiff.Params { return gq.params }

// Supports implements model.Interface: EPFO only.
func (gq *GQE) Supports(structure string) bool {
	return !query.UsesNegation(structure) && !query.UsesDifference(structure)
}

func (gq *GQE) embed(t *autodiff.Tape, n *query.Node) autodiff.V {
	switch n.Op {
	case query.OpAnchor:
		return gq.ent.Leaf(t, int(n.Anchor))
	case query.OpProjection:
		in := gq.embed(t, n.Args[0])
		w := gq.relW.Leaf(t, int(n.Rel))
		b := gq.relB.Leaf(t, int(n.Rel))
		return t.Add(t.Mul(w, in), b)
	case query.OpIntersection:
		inners := make([]autodiff.V, len(n.Args))
		for i, a := range n.Args {
			inners[i] = gq.interInner.Forward(t, gq.embed(t, a))
		}
		return gq.interOut.Forward(t, t.MeanStack(inners))
	case query.OpNegation:
		panic("baselines: GQE does not support the negation operator")
	case query.OpDifference:
		panic("baselines: GQE does not support the difference operator")
	case query.OpUnion:
		panic("baselines: embed on union node; rewrite with query.DNF first")
	}
	panic("baselines: GQE embed: unknown op")
}

// Loss implements model.Interface (L1 distance in the vector space).
func (gq *GQE) Loss(t *autodiff.Tape, q *query.Query, negSamples int, rng *rand.Rand) (autodiff.V, bool) {
	pos, negs, ok := samplePosNegs(q, gq.graph.NumEntities(), negSamples, rng)
	if !ok {
		return autodiff.V{}, false
	}
	disjuncts := query.DNF(q.Root)
	embs := make([]autodiff.V, len(disjuncts))
	for i, d := range disjuncts {
		embs[i] = gq.embed(t, d)
	}
	score := func(e kg.EntityID) autodiff.V {
		pt := gq.ent.Leaf(t, int(e))
		per := make([]autodiff.V, len(embs))
		for i, qv := range embs {
			per[i] = t.L1(t.Sub(pt, qv))
		}
		return minScalar(t, per)
	}
	negScores := make([]autodiff.V, len(negs))
	for i, ne := range negs {
		negScores[i] = score(ne)
	}
	return marginLoss(t, gq.cfg.Gamma, score(pos), negScores), true
}

// Distances implements model.Interface.
func (gq *GQE) Distances(n *query.Node) []float64 {
	t := autodiff.NewTape()
	disjuncts := query.DNF(n)
	embs := make([][]float64, len(disjuncts))
	for i, d := range disjuncts {
		embs[i] = append([]float64(nil), gq.embed(t, d).Value()...)
	}
	out := make([]float64, gq.graph.NumEntities())
	for e := range out {
		pt := gq.ent.Row(e)
		best := math.Inf(1)
		for _, qv := range embs {
			d := 0.0
			for j := range pt {
				d += math.Abs(pt[j] - qv[j])
			}
			if d < best {
				best = d
			}
		}
		out[e] = best
	}
	return out
}
