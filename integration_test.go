package halk_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/eval"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/match"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/sparql"
)

// trainSmall trains a small HaLk model for the integration tests.
func trainSmall(t *testing.T, ds *kg.Dataset, steps int) *halk.Model {
	t.Helper()
	cfg := halk.DefaultConfig(1)
	cfg.Dim, cfg.Hidden, cfg.NumGroups = 12, 16, 4
	cfg.Gamma = 24 * float64(cfg.Dim) / 800
	m := halk.New(ds.Train, cfg)
	tc := model.DefaultTrainConfig(2)
	tc.Steps = steps
	tc.BatchSize = 8
	tc.NegSamples = 8
	if _, err := model.Train(m, ds.Train, tc); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEndToEndPipeline drives the whole stack once: dataset -> training
// -> SPARQL -> Adaptor -> embedding executor + subgraph executor ->
// metrics -> checkpoint round trip -> LSH answering.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	ds := kg.SynthFB237(1)
	m := trainSmall(t, ds, 150)

	// SPARQL through the Adaptor, over real dataset vocabulary.
	var tr = ds.Train.Triples()[0]
	src := `SELECT ?x WHERE { :` + ds.Train.Entities.Name(int32(tr.H)) +
		` :` + ds.Train.Relations.Name(int32(tr.R)) + ` ?x }`
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	adaptor := &sparql.Adaptor{Entities: ds.Train.Entities, Relations: ds.Train.Relations}
	root, err := adaptor.Compile(pq)
	if err != nil {
		t.Fatal(err)
	}

	// Both executors answer it.
	d := m.Distances(root)
	if len(d) != ds.Train.NumEntities() {
		t.Fatalf("embedding executor returned %d distances", len(d))
	}
	gf := match.New(ds.Train)
	res := gf.Execute(root, match.Options{})
	want := query.Answers(root, ds.Train)
	if len(res.Answers) != len(want) {
		t.Fatalf("matcher found %d answers, oracle %d", len(res.Answers), len(want))
	}

	// Metrics machinery over an evaluation workload.
	rng := rand.New(rand.NewSource(9))
	w := query.Workload("1p", 5, ds.Train, ds.Test, rng)
	mt := eval.Evaluate(m, w)
	if mt.N == 0 || mt.MRR < 0 || mt.MRR > 1 {
		t.Fatalf("metrics = %+v", mt)
	}

	// Checkpoint round trip preserves rankings exactly. The round trip
	// goes through a real file: gob decoders buffer reads from plain
	// files, which a two-decoder implementation gets wrong (regression
	// guard).
	path := filepath.Join(t.TempDir(), "m.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveCheckpoint(f, "FB237", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	m2, hdr, err := halk.LoadCheckpoint(rf, func(hdr halk.CheckpointHeader) (*kg.Graph, error) {
		return kg.SynthFB237(hdr.Seed).Train, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Dataset != "FB237" || hdr.Config.Dim != 12 {
		t.Fatalf("header = %+v", hdr)
	}
	d2 := m2.Distances(root)
	for e := range d {
		if d[e] != d2[e] {
			t.Fatalf("distances differ after checkpoint round trip at entity %d", e)
		}
	}

	// LSH-assisted answering agrees with the full ranking on its pool.
	ai := m.NewAnswerIndex(ann.DefaultConfig(3))
	top := ai.TopKApprox(root, 5)
	if len(top) == 0 {
		t.Fatal("no approximate answers")
	}
}

// TestPruningPipeline checks the Sec. IV-D contract end to end: the
// restricted matcher only returns answers the unrestricted matcher also
// finds, and does less candidate-generation work.
func TestPruningPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	ds := kg.SynthNELL(2)
	m := trainSmall(t, ds, 100)
	gf := match.New(ds.Train)
	rng := rand.New(rand.NewSource(5))
	w := query.Workload("2ipp", 5, ds.Train, ds.Test, rng)
	if len(w) == 0 {
		t.Skip("no 2ipp queries sampled")
	}
	for i := range w {
		full := gf.Execute(w[i].Root, match.Options{})
		restrict := make(query.Set)
		for _, cands := range m.CandidatesPerNode(w[i].Root, 25) {
			for _, e := range cands {
				restrict[e] = struct{}{}
			}
		}
		for _, a := range w[i].Root.Anchors() {
			restrict[a] = struct{}{}
		}
		pruned := gf.Execute(w[i].Root, match.Options{Restrict: restrict})
		for e := range pruned.Answers {
			if !full.Answers.Has(e) {
				t.Fatal("pruned matching fabricated an answer")
			}
		}
		if pruned.FilterOps >= full.FilterOps {
			t.Errorf("pruning did not reduce filter work: %d vs %d",
				pruned.FilterOps, full.FilterOps)
		}
	}
}
