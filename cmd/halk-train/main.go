// Command halk-train trains a HaLk model on one of the benchmark
// stand-in datasets and writes a checkpoint.
//
// Usage:
//
//	halk-train -dataset NELL -steps 8000 -out nell.ckpt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("halk-train: ")

	var (
		dataset = flag.String("dataset", "FB237", "dataset stand-in: FB15k, FB237 or NELL")
		seed    = flag.Int64("seed", 1, "dataset and model seed")
		dim     = flag.Int("dim", 64, "embedding dimensionality")
		hidden  = flag.Int("hidden", 64, "operator MLP width")
		steps   = flag.Int("steps", 8000, "optimizer steps")
		out     = flag.String("out", "halk.ckpt", "checkpoint output path")
		pprofAt = flag.String("pprof-addr", "", "debug listen address exposing /debug/pprof/ and live training /metrics (empty disables)")
	)
	flag.Parse()

	ds, err := datasetByName(*dataset, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dataset %s: %d entities, %d relations, %d/%d/%d train/valid/test triples",
		ds.Name, ds.Train.NumEntities(), ds.Train.NumRelations(),
		ds.Train.NumTriples(), ds.Valid.NumTriples(), ds.Test.NumTriples())

	cfg := halk.DefaultConfig(*seed)
	cfg.Dim, cfg.Hidden = *dim, *hidden
	cfg.Gamma = 24 * float64(*dim) / 800
	m := halk.New(ds.Train, cfg)
	log.Printf("model: %d parameters", m.Params().Count())

	tc := model.DefaultTrainConfig(*seed)
	tc.Steps = *steps
	tc.Progress = func(step int, loss float64) {
		log.Printf("step %6d  loss %.4f", step, loss)
	}
	if *pprofAt != "" {
		reg := obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
		tc.Metrics = reg
		dbg, bound, err := obs.ServeDebug(*pprofAt, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug server on %s (/debug/pprof/, /metrics: steps, loss, grad norm)", bound)
	}
	res, err := model.Train(m, ds.Train, tc)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("trained %d steps in %v (final loss %.4f)", res.Steps, res.Elapsed, res.FinalLoss)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := m.SaveCheckpoint(f, ds.Name, *seed); err != nil {
		log.Fatal(err)
	}
	log.Printf("checkpoint written to %s", *out)
}

func datasetByName(name string, seed int64) (*kg.Dataset, error) {
	switch name {
	case "FB15k":
		return kg.SynthFB15k(seed), nil
	case "FB237":
		return kg.SynthFB237(seed), nil
	case "NELL":
		return kg.SynthNELL(seed), nil
	}
	return nil, fmt.Errorf("unknown dataset %q (want FB15k, FB237 or NELL)", name)
}
