// Command halk-train trains a HaLk model on one of the benchmark
// stand-in datasets and writes a checkpoint.
//
// Usage:
//
//	halk-train -dataset NELL -steps 8000 -out nell.ckpt
//
// Training is durable: every -ckpt-every steps a crash-safe checkpoint
// (verified envelope, atomic rename, keep-last -ckpt-keep rotation) is
// written into -ckpt-dir, carrying the full optimizer state. A killed
// run restarts with -resume and continues bit-exactly from the newest
// valid entry — a torn file from a crash mid-write is detected by its
// checksum and skipped in favour of the previous entry. SIGINT/SIGTERM
// cut a final checkpoint before exiting, so an interrupted run loses
// nothing.
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("halk-train: ")

	var (
		dataset   = flag.String("dataset", "FB237", "dataset stand-in: FB15k, FB237 or NELL")
		seed      = flag.Int64("seed", 1, "dataset and model seed")
		dim       = flag.Int("dim", 64, "embedding dimensionality")
		hidden    = flag.Int("hidden", 64, "operator MLP width")
		steps     = flag.Int("steps", 8000, "optimizer steps")
		out       = flag.String("out", "halk.ckpt", "checkpoint output path")
		pprofAt   = flag.String("pprof-addr", "", "debug listen address exposing /debug/pprof/ and live training /metrics (empty disables)")
		ckptEvery = flag.Int("ckpt-every", 500, "write a crash-safe checkpoint every N optimizer steps (0 = only final/interrupt checkpoints)")
		ckptKeep  = flag.Int("ckpt-keep", ckpt.DefaultKeep, "rotation entries to keep in -ckpt-dir")
		ckptDir   = flag.String("ckpt-dir", "", "rotation directory for periodic checkpoints (default <out>.d)")
		resume    = flag.Bool("resume", false, "resume bit-exactly from the newest valid checkpoint in -ckpt-dir")
	)
	flag.Parse()

	ds, err := datasetByName(*dataset, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dataset %s: %d entities, %d relations, %d/%d/%d train/valid/test triples",
		ds.Name, ds.Train.NumEntities(), ds.Train.NumRelations(),
		ds.Train.NumTriples(), ds.Valid.NumTriples(), ds.Test.NumTriples())

	dirPath := *ckptDir
	if dirPath == "" {
		dirPath = *out + ".d"
	}
	rot := &ckpt.Dir{Path: dirPath, Keep: *ckptKeep}

	cfg := halk.DefaultConfig(*seed)
	cfg.Dim, cfg.Hidden = *dim, *hidden
	cfg.Gamma = 24 * float64(*dim) / 800

	// Fresh start builds the model from flags; -resume rebuilds it from
	// the newest rotation entry that verifies and decodes, restoring
	// parameters, Adam moments and the step counter. Entries that fail —
	// a torn newest file from a crash mid-write, a bit-flipped payload —
	// are skipped in favour of their predecessor; a checkpoint from a
	// different dataset/seed is never silently adopted.
	var (
		m  *halk.Model
		st *model.TrainState
	)
	if *resume {
		var rst model.TrainState
		entry, err := rot.LoadLatest(func(e ckpt.Entry, payload []byte) error {
			dec := gob.NewDecoder(bytes.NewReader(payload))
			mm, _, err := halk.LoadCheckpointFrom(dec, func(hdr halk.CheckpointHeader) (*kg.Graph, error) {
				if hdr.Dataset != ds.Name || hdr.Seed != *seed {
					return nil, fmt.Errorf("%w: checkpoint is for %s/seed %d, this run is %s/seed %d",
						halk.ErrCheckpointMismatch, hdr.Dataset, hdr.Seed, ds.Name, *seed)
				}
				return ds.Train, nil
			})
			if err != nil {
				return err
			}
			s, err := model.DecodeTrainState(dec, mm.Params())
			if err != nil {
				return err
			}
			m, rst = mm, s
			return nil
		})
		if err != nil {
			log.Fatalf("cannot resume from %s: %v", dirPath, err)
		}
		st = &rst
		if m.Config() != cfg {
			log.Printf("resume: using the checkpoint's model config (flags differ)")
		}
		log.Printf("resuming from %s at step %d (adam step %d)", entry.Path, rst.Step, rst.AdamStep)
	} else {
		m = halk.New(ds.Train, cfg)
	}
	log.Printf("model: %d parameters", m.Params().Count())

	// SIGINT/SIGTERM request a graceful stop: the trainer cuts a final
	// checkpoint at the current step boundary and returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tc := model.DefaultTrainConfig(*seed)
	tc.Steps = *steps
	tc.Progress = func(step int, loss float64) {
		log.Printf("step %6d  loss %.4f", step, loss)
	}
	tc.Checkpoint = &model.CheckpointConfig{
		Dir:   rot,
		Every: *ckptEvery,
		Header: func(enc *gob.Encoder) error {
			return enc.Encode(halk.CheckpointHeader{Dataset: ds.Name, Seed: *seed, Config: m.Config()})
		},
		Resume:    st,
		Interrupt: ctx.Done(),
		OnSave: func(step int, path string) {
			log.Printf("checkpoint: step %d -> %s", step, path)
		},
	}
	if *pprofAt != "" {
		reg := obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
		tc.Metrics = reg
		dbg, bound, err := obs.ServeDebug(*pprofAt, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug server on %s (/debug/pprof/, /metrics: steps, loss, grad norm)", bound)
	}
	res, err := model.Train(m, ds.Train, tc)
	if err != nil {
		log.Fatal(err)
	}
	if res.Interrupted {
		log.Printf("interrupted at step %d after %v; state saved in %s", res.Steps, res.Elapsed, dirPath)
		log.Printf("continue with: halk-train -dataset %s -seed %d -steps %d -out %s -ckpt-dir %s -resume",
			ds.Name, *seed, *steps, *out, dirPath)
		return
	}
	log.Printf("trained %d steps in %v (final loss %.4f)", res.Steps, res.Elapsed, res.FinalLoss)

	// The serving checkpoint is written atomically inside the verified
	// envelope: the bytes are fsynced and the file descriptor's Close
	// error checked before the rename publishes it, so a full disk or a
	// short write can never leave a truncated file at -out.
	if err := m.WriteCheckpointFile(*out, ds.Name, *seed); err != nil {
		log.Fatal(err)
	}
	log.Printf("checkpoint written to %s", *out)
}

func datasetByName(name string, seed int64) (*kg.Dataset, error) {
	switch name {
	case "FB15k":
		return kg.SynthFB15k(seed), nil
	case "FB237":
		return kg.SynthFB237(seed), nil
	case "NELL":
		return kg.SynthNELL(seed), nil
	}
	return nil, fmt.Errorf("unknown dataset %q (want FB15k, FB237 or NELL)", name)
}
