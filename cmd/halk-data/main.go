// Command halk-data generates, inspects and exports the benchmark
// stand-in datasets.
//
// Usage:
//
//	halk-data -dataset NELL -stats
//	halk-data -dataset FB237 -export ./data          # train/valid/test TSVs
//	halk-data -import ./data -stats                  # read TSVs back
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/halk-kg/halk/internal/kg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("halk-data: ")

	var (
		dataset = flag.String("dataset", "FB237", "dataset stand-in: FB15k, FB237 or NELL")
		seed    = flag.Int64("seed", 1, "generation seed")
		stats   = flag.Bool("stats", false, "print structural statistics")
		export  = flag.String("export", "", "write train/valid/test TSVs into this directory")
		imp     = flag.String("import", "", "read train/valid/test TSVs from this directory instead of generating")
	)
	flag.Parse()

	var ds *kg.Dataset
	var err error
	if *imp != "" {
		ds, err = importDataset(*imp)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		switch *dataset {
		case "FB15k":
			ds = kg.SynthFB15k(*seed)
		case "FB237":
			ds = kg.SynthFB237(*seed)
		case "NELL":
			ds = kg.SynthNELL(*seed)
		default:
			log.Fatalf("unknown dataset %q", *dataset)
		}
	}
	if err := ds.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d/%d/%d train/valid/test triples\n",
		ds.Name, ds.Train.NumTriples(), ds.Valid.NumTriples(), ds.Test.NumTriples())

	if *stats {
		for _, part := range []struct {
			name string
			g    *kg.Graph
		}{{"train", ds.Train}, {"test", ds.Test}} {
			fmt.Printf("\n[%s graph]\n%s\n", part.name, kg.ComputeStats(part.g))
		}
	}

	if *export != "" {
		if err := os.MkdirAll(*export, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, part := range []struct {
			name string
			g    *kg.Graph
		}{{"train", ds.Train}, {"valid", ds.Valid}, {"test", ds.Test}} {
			path := filepath.Join(*export, part.name+".tsv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := kg.WriteTSV(f, part.g); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%d triples)\n", path, part.g.NumTriples())
		}
	}
}

// importDataset reads train.tsv / valid.tsv / test.tsv from dir into one
// dataset sharing dictionaries.
func importDataset(dir string) (*kg.Dataset, error) {
	ents, rels := kg.NewDict(), kg.NewDict()
	graphs := make(map[string]*kg.Graph, 3)
	for _, name := range []string{"train", "valid", "test"} {
		f, err := os.Open(filepath.Join(dir, name+".tsv"))
		if err != nil {
			return nil, err
		}
		g, err := kg.ReadTSV(f, ents, rels)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		graphs[name] = g
	}
	return &kg.Dataset{
		Name:  filepath.Base(dir),
		Train: graphs["train"],
		Valid: graphs["valid"],
		Test:  graphs["test"],
	}, nil
}
