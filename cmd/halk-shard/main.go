// Command halk-shard hosts one contiguous slice of a trained HaLk
// model's entity table behind the cluster scan API, turning the
// in-process scatter-gather engine into a multi-node topology: a
// halk-serve router (-cluster) scatters each query to a set of
// halk-shard nodes and merges their local top-K lists.
//
// Usage:
//
//	halk-shard -ckpt halk.ckpt -addr :9001 -node 0 -nodes 3
//	halk-shard -ckpt halk.ckpt -addr :9002 -range 4000:8000
//
// -node/-nodes partitions the entity table with the same
// remainder-first formula the in-process engine uses for sub-sharding,
// so an n-node topology of single-shard nodes hosts exactly the ranges
// a single-process n-shard engine scans; -range pins an explicit
// [lo:hi) slice instead. -shards additionally sub-shards the hosted
// slice across local cores.
//
// Endpoints:
//
//	POST /v1/scan    {"arcs": [...], "k": 10, "bound": 0.42} — local top-K
//	POST /v1/query   debugging: answer a query over the hosted range only
//	POST /v1/drain   begin coordinated drain: healthz flips to 503
//	GET  /v1/healthz readiness: hosted range, entity version, checkpoint
//	GET  /v1/stats   per-local-shard scan counters
//	GET  /metrics    Prometheus text format
//
// SIGTERM (or POST /v1/drain) triggers a coordinated drain: readiness
// fails first (healthz answers 503 "draining" while /v1/scan keeps
// serving), routers get -drain-grace to divert new work, then the
// listener stops and in-flight scans get the -drain budget to finish.
//
// With -ckpt-watch the checkpoint path is polled and newer checkpoints
// hot-reloaded exactly as in halk-serve; the node's entity version
// moves, the router's health loop observes it, and once a quorum of
// nodes report the new version the router flips its cache namespace —
// the coordinated rollout path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/cluster"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/shard"
)

// datasetFor regenerates the synthetic dataset a checkpoint header
// names (see cmd/halk-serve).
func datasetFor(hdr halk.CheckpointHeader) (*kg.Dataset, error) {
	switch hdr.Dataset {
	case "FB15k":
		return kg.SynthFB15k(hdr.Seed), nil
	case "FB237":
		return kg.SynthFB237(hdr.Seed), nil
	case "NELL":
		return kg.SynthNELL(hdr.Seed), nil
	default:
		return nil, resil.Permanent(fmt.Errorf("unknown dataset %q in checkpoint", hdr.Dataset))
	}
}

func resolveCkpt(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if fi.IsDir() {
		return (&ckpt.Dir{Path: path}).LatestPath()
	}
	return path, nil
}

func classifyLoadErr(err error) error {
	if err == nil || resil.IsPermanent(err) {
		return err
	}
	if ckpt.IsCorrupt(err) || errors.Is(err, halk.ErrCheckpointCorrupt) || errors.Is(err, halk.ErrCheckpointMismatch) {
		return resil.Permanent(err)
	}
	return err
}

// parseRange parses "-range lo:hi".
func parseRange(s string) (lo, hi int, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want lo:hi, got %q", s)
	}
	if lo, err = strconv.Atoi(a); err != nil {
		return 0, 0, fmt.Errorf("bad lo in %q: %v", s, err)
	}
	if hi, err = strconv.Atoi(b); err != nil {
		return 0, 0, fmt.Errorf("bad hi in %q: %v", s, err)
	}
	return lo, hi, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("halk-shard: ")

	var (
		ckptPath    = flag.String("ckpt", "halk.ckpt", "checkpoint file, or rotation directory written by halk-train -ckpt-dir (serves its newest entry)")
		addr        = flag.String("addr", ":9000", "listen address")
		nodeIdx     = flag.Int("node", 0, "this node's index in an N-node topology (with -nodes)")
		nodes       = flag.Int("nodes", 1, "topology width: partition the entity table into this many contiguous ranges")
		rangeFlag   = flag.String("range", "", "host an explicit entity range lo:hi instead of -node/-nodes")
		shards      = flag.Int("shards", 1, "sub-shard the hosted range across this many local scan goroutines")
		shardTO     = flag.Duration("shard-timeout", 0, "per-local-shard scan deadline; missed sub-shards degrade the scan to a partial result (0 = none)")
		timeout     = flag.Duration("timeout", 10*time.Second, "default scan deadline when a request carries no timeout_ms")
		maxK        = flag.Int("maxk", 1000, "cap on per-request k")
		drain       = flag.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight requests")
		drainGrace  = flag.Duration("drain-grace", 2*time.Second, "pause between failing readiness (healthz 503 draining) and refusing connections, so routers stop sending new work first")
		pprofAt     = flag.String("pprof-addr", "", "separate debug listen address exposing /debug/pprof/ and /metrics (empty disables)")
		ckptRetries = flag.Int("ckpt-retries", 3, "checkpoint-load attempts before giving up")
		ckptWatch   = flag.Duration("ckpt-watch", 0, "poll the -ckpt path this often and hot-reload newer checkpoints (0 disables)")
	)
	flag.Parse()

	var (
		ds   *kg.Dataset
		m    *halk.Model
		info halk.FileInfo
	)
	loadBackoff := resil.NewBackoff(200*time.Millisecond, 5*time.Second, time.Now().UnixNano())
	err := resil.Retry(context.Background(), *ckptRetries, loadBackoff, func() error {
		path, err := resolveCkpt(*ckptPath)
		if err != nil {
			log.Printf("checkpoint load: %v (will retry)", err)
			return err
		}
		ds = nil
		m, info, err = halk.LoadCheckpointFile(path, func(hdr halk.CheckpointHeader) (*kg.Graph, error) {
			d, derr := datasetFor(hdr)
			if derr != nil {
				return nil, derr
			}
			ds = d
			return d.Train, nil
		})
		if err = classifyLoadErr(err); err != nil {
			if resil.IsPermanent(err) {
				log.Printf("checkpoint load: %v (permanent, not retrying)", err)
			} else {
				log.Printf("checkpoint load: %v (will retry)", err)
			}
		}
		return err
	})
	if err != nil {
		log.Fatalf("checkpoint load failed: %v", err)
	}
	hdr := info.Header
	ents := ds.Train.NumEntities()

	var lo, hi int
	if *rangeFlag != "" {
		lo, hi, err = parseRange(*rangeFlag)
		if err != nil {
			log.Fatalf("-range: %v", err)
		}
	} else {
		if *nodes < 1 || *nodeIdx < 0 || *nodeIdx >= *nodes {
			log.Fatalf("-node %d out of range for -nodes %d", *nodeIdx, *nodes)
		}
		lo, hi = cluster.Partition(ents, *nodes, *nodeIdx)
	}
	log.Printf("loaded %s model (d=%d) trained on %s from %s; hosting entities [%d, %d) of %d",
		m.Name(), hdr.Config.Dim, hdr.Dataset, info.Path, lo, hi, ents)

	reg := obs.NewRegistry()
	status := ckpt.NewStatus()
	status.SetLoaded(info.Path, hdr.Dataset, hdr.Seed, info.Step, m.EntityVersion())
	status.Register(reg)

	ranker, err := m.NewRangeRanker(lo, hi, shard.Options{
		Shards:       *shards,
		ShardTimeout: *shardTO,
		Metrics:      reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	node, err := cluster.NewNode(cluster.NodeConfig{
		Engine:    ranker.Engine(),
		Params:    m.ShardParams(),
		Metrics:   reg,
		Ckpt:      status,
		ModelName: m.Name(),
		Entities:  ds.Train.Entities,
		Relations: ds.Train.Relations,
		Graph:     ds.Test,
		Embed: func(n *query.Node) []cluster.ArcSpec {
			arcs := m.EmbedQueryLocked(n)
			specs := make([]cluster.ArcSpec, len(arcs))
			for i, a := range arcs {
				specs[i] = cluster.ArcSpec{C: a.C, L: a.L, Hot: a.Hot}
			}
			return specs
		},
		DefaultTimeout: *timeout,
		MaxK:           *maxK,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *pprofAt != "" {
		dbg, bound, err := obs.ServeDebug(*pprofAt, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug server on %s (/debug/pprof/, /metrics)", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *ckptWatch > 0 {
		watcher := ckpt.NewWatcher(*ckptPath)
		watcher.Ack(info.Path)
		go func() {
			tick := time.NewTicker(*ckptWatch)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				path, changed, err := watcher.Poll()
				if err != nil {
					log.Printf("ckpt-watch: %v", err)
					continue
				}
				if !changed {
					continue
				}
				newInfo, err := m.ReloadFromFile(path, hdr.Dataset, hdr.Seed)
				if err != nil {
					status.ReloadFailed()
					watcher.Ack(path)
					log.Printf("ckpt-watch: reload of %s failed, still serving previous checkpoint: %v", path, err)
					continue
				}
				if err := ranker.Refresh(); err != nil {
					log.Printf("ckpt-watch: snapshot refresh: %v", err)
				}
				status.SetLoaded(path, hdr.Dataset, hdr.Seed, newInfo.Step, m.EntityVersion())
				watcher.Ack(path)
				log.Printf("ckpt-watch: hot-reloaded %s (step %d, entity version %d)", path, newInfo.Step, m.EntityVersion())
			}
		}()
		log.Printf("checkpoint watcher polling %s every %v", *ckptPath, *ckptWatch)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           node.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("scan node on %s ([%d, %d), %d local shards, timeout %v)", *addr, lo, hi, *shards, *timeout)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Print("signal received; failing readiness")
	case <-node.DrainC():
		log.Print("drain requested over POST /v1/drain; failing readiness")
	}

	// Coordinated drain: fail readiness FIRST — /v1/healthz answers 503
	// "draining" while /v1/scan keeps serving — and give routers a grace
	// period to observe it and stop routing new work here. Only then stop
	// accepting connections and wait out the in-flight scans.
	node.Drain()
	if *drainGrace > 0 {
		log.Printf("draining: readiness failed, waiting %v for routers to divert", *drainGrace)
		select {
		case <-time.After(*drainGrace):
		case err := <-errc:
			log.Fatal(err)
		}
	}
	log.Printf("draining in-flight requests for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	node.Close()
	log.Print("drained; bye")
}
