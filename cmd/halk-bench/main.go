// Command halk-bench regenerates every table and figure of the paper's
// evaluation (Sec. IV) and prints them in paper order.
//
// Usage:
//
//	halk-bench -all                 # full budgets (tens of minutes on CPU)
//	halk-bench -all -quick          # smoke budgets (a few minutes)
//	halk-bench -only "Table I,Fig. 6b"
//	halk-bench -all -o results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/halk-kg/halk/internal/bench"
	"github.com/halk-kg/halk/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("halk-bench: ")

	var (
		all     = flag.Bool("all", false, "run every table and figure")
		only    = flag.String("only", "", "comma-separated experiment ids (e.g. \"Table I,Fig. 6a\")")
		quick   = flag.Bool("quick", false, "smoke-scale budgets")
		seed    = flag.Int64("seed", 1, "suite seed")
		out     = flag.String("o", "", "also write results to this file")
		shards  = flag.Int("shards", 0, "shard count for the Sharding experiment (0 = sweep 1,2,4,GOMAXPROCS)")
		pprofAt = flag.String("pprof-addr", "", "debug listen address exposing /debug/pprof/ for profiling suite runs (empty disables)")
	)
	flag.Parse()

	if !*all && *only == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *pprofAt != "" {
		reg := obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
		dbg, bound, err := obs.ServeDebug(*pprofAt, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug server on %s (/debug/pprof/, /metrics)", bound)
	}

	cfg := bench.FullConfig(*seed)
	if *quick {
		cfg = bench.QuickConfig(*seed)
	}
	cfg.Shards = *shards
	cfg.Out = os.Stderr
	s := bench.NewSuite(cfg)

	var sinks []io.Writer = []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[strings.ToLower(id)] = true
		}
	}

	runners := []struct {
		id  string
		run func() *bench.Table
	}{
		{"Table I", s.Table1}, {"Table II", s.Table2},
		{"Table III", s.Table3}, {"Table IV", s.Table4},
		{"Table V", s.Table5}, {"Fig. 6a", s.Fig6a},
		{"Fig. 6b", s.Fig6b}, {"Fig. 6c", s.Fig6c},
		{"Table VI", s.Table6},
		// Supplementary experiments beyond the paper's tables.
		{"Observation", s.Observation}, {"Cardinality", s.Cardinality},
		{"Table Ext", func() *bench.Table { return s.TableExtended("FB237") }},
		{"Sharding", s.Sharding},
		{"BatchMix", s.BatchMix},
		{"IngestMix", s.IngestMix},
		{"ReplicaFailover", s.ReplicaFailover},
	}
	ran := 0
	for _, r := range runners {
		if !*all && !wanted[strings.ToLower(r.id)] {
			continue
		}
		fmt.Fprintln(w, r.run().String())
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiment matched -only %q", *only)
	}
}
