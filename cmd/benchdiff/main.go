// Command benchdiff turns `go test -bench` output into a JSON snapshot
// and compares it against a checked-in baseline, failing when any shared
// benchmark regressed beyond a threshold. It is the gate behind the CI
// bench-smoke job:
//
//	go test -run '^$' -bench 'ShardedDistances|FastDistances' -benchtime=1x ./... | \
//	    benchdiff -baseline BENCH_baseline.json -out BENCH_ci.json
//
// A missing baseline is not an error — the snapshot is still written so
// it can be promoted to the new baseline — and benchmarks present on
// only one side are reported but never fail the run (the set drifts as
// the suite grows). Exit status: 0 ok, 1 regression, 2 usage/IO error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Snapshot is the serialized form of one bench run.
type Snapshot struct {
	// Note is free-form provenance (commit, date, host) — never compared.
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkShardedDistances/shards=4-8  	     100	    123456 ns/op	  12 B/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// parseBench extracts benchmark results from `go test -bench` output.
// Repeated names (e.g. -count>1 or the same benchmark from several
// packages) keep the fastest run: the minimum is the least noisy
// estimate of the true cost.
func parseBench(r io.Reader) ([]Benchmark, error) {
	best := map[string]Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if prev, ok := best[b.Name]; !ok || b.NsPerOp < prev.NsPerOp {
			best[b.Name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Benchmark, 0, len(best))
	for _, b := range best {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// delta is one baseline-vs-current comparison.
type delta struct {
	Name     string
	Old, New float64 // ns/op
	Ratio    float64 // New/Old - 1; +0.30 = 30% slower
}

// compare pairs benchmarks by name. onlyOld/onlyNew list names present
// on one side only.
func compare(base, cur []Benchmark) (deltas []delta, onlyOld, onlyNew []string) {
	baseBy := map[string]Benchmark{}
	for _, b := range base {
		baseBy[b.Name] = b
	}
	curSeen := map[string]bool{}
	for _, c := range cur {
		curSeen[c.Name] = true
		b, ok := baseBy[c.Name]
		if !ok {
			onlyNew = append(onlyNew, c.Name)
			continue
		}
		deltas = append(deltas, delta{Name: c.Name, Old: b.NsPerOp, New: c.NsPerOp, Ratio: c.NsPerOp/b.NsPerOp - 1})
	}
	for _, b := range base {
		if !curSeen[b.Name] {
			onlyOld = append(onlyOld, b.Name)
		}
	}
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

func run(benchOut io.Reader, baselinePath, outPath, note string, threshold float64, logw io.Writer) int {
	cur, err := parseBench(benchOut)
	if err != nil {
		fmt.Fprintf(logw, "benchdiff: parse: %v\n", err)
		return 2
	}
	if len(cur) == 0 {
		fmt.Fprintln(logw, "benchdiff: no benchmark lines in input")
		return 2
	}

	if outPath != "" {
		data, err := json.MarshalIndent(Snapshot{Note: note, Benchmarks: cur}, "", "  ")
		if err != nil {
			fmt.Fprintf(logw, "benchdiff: %v\n", err)
			return 2
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(logw, "benchdiff: %v\n", err)
			return 2
		}
		fmt.Fprintf(logw, "benchdiff: wrote %d benchmarks to %s\n", len(cur), outPath)
	}

	if baselinePath == "" {
		return 0
	}
	raw, err := os.ReadFile(baselinePath)
	if os.IsNotExist(err) {
		fmt.Fprintf(logw, "benchdiff: no baseline at %s; skipping comparison\n", baselinePath)
		return 0
	}
	if err != nil {
		fmt.Fprintf(logw, "benchdiff: %v\n", err)
		return 2
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(logw, "benchdiff: baseline %s: %v\n", baselinePath, err)
		return 2
	}

	deltas, onlyOld, onlyNew := compare(base.Benchmarks, cur)
	for _, n := range onlyNew {
		fmt.Fprintf(logw, "benchdiff: %s: new benchmark, no baseline\n", n)
	}
	for _, n := range onlyOld {
		fmt.Fprintf(logw, "benchdiff: %s: in baseline but not in this run\n", n)
	}
	failed := false
	for _, d := range deltas {
		verdict := "ok"
		if d.Ratio > threshold {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(logw, "benchdiff: %-50s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			d.Name, d.Old, d.New, 100*d.Ratio, verdict)
	}
	if failed {
		fmt.Fprintf(logw, "benchdiff: FAIL: regression beyond %.0f%% threshold\n", 100*threshold)
		return 1
	}
	fmt.Fprintf(logw, "benchdiff: %d benchmarks within %.0f%% of baseline\n", len(deltas), 100*threshold)
	return 0
}

func main() {
	var (
		in        = flag.String("in", "-", "bench output to read (- = stdin)")
		baseline  = flag.String("baseline", "", "baseline snapshot JSON to compare against (missing file skips comparison)")
		out       = flag.String("out", "", "write this run's snapshot JSON here")
		note      = flag.String("note", "", "provenance note stored in the snapshot")
		threshold = flag.Float64("threshold", 0.25, "fail when ns/op grows by more than this fraction")
	)
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		src = f
	}
	os.Exit(run(src, *baseline, *out, *note, *threshold, os.Stderr))
}
