package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: github.com/halk-kg/halk
BenchmarkShardedDistances/shards=1-8         	     100	   500000 ns/op
BenchmarkShardedDistances/shards=4-8         	     100	   150000 ns/op
BenchmarkShardedDistances/shards=4-8         	     100	   140000 ns/op
PASS
ok  	github.com/halk-kg/halk	1.2s
BenchmarkFastDistances-8                     	    2000	     8000.5 ns/op	  16 B/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	// Sorted by name; duplicate shards=4 keeps the faster run.
	if got[0].Name != "BenchmarkFastDistances-8" || got[0].NsPerOp != 8000.5 {
		t.Errorf("got[0] = %+v", got[0])
	}
	if got[2].Name != "BenchmarkShardedDistances/shards=4-8" || got[2].NsPerOp != 140000 {
		t.Errorf("got[2] = %+v (duplicate should keep the minimum)", got[2])
	}
}

func TestCompare(t *testing.T) {
	base := []Benchmark{{Name: "A", NsPerOp: 100}, {Name: "Gone", NsPerOp: 50}}
	cur := []Benchmark{{Name: "A", NsPerOp: 130}, {Name: "New", NsPerOp: 10}}
	deltas, onlyOld, onlyNew := compare(base, cur)
	if len(deltas) != 1 || deltas[0].Name != "A" {
		t.Fatalf("deltas = %+v", deltas)
	}
	if r := deltas[0].Ratio; r < 0.299 || r > 0.301 {
		t.Errorf("ratio = %v, want 0.30", r)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "Gone" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "New" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
}

// TestNewBenchmarksTolerated pins the behaviour a growing benchmark
// suite depends on: a run containing benchmarks absent from the
// baseline (newly added ones) must pass — the newcomers are reported,
// not treated as regressions — while existing benchmarks are still
// compared.
func TestNewBenchmarksTolerated(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	var log bytes.Buffer
	if code := run(strings.NewReader(sampleOut), "", basePath, "", 0.25, &log); code != 0 {
		t.Fatalf("writing baseline: exit %d", code)
	}

	withNew := sampleOut + "BenchmarkHedgedScan-8                        	    1000	    42000 ns/op\nPASS\n"
	log.Reset()
	if code := run(strings.NewReader(withNew), basePath, "", "", 0.25, &log); code != 0 {
		t.Fatalf("run with a new benchmark: exit %d, log:\n%s", code, log.String())
	}
	if !strings.Contains(log.String(), "BenchmarkHedgedScan-8: new benchmark, no baseline") {
		t.Errorf("new benchmark not reported:\n%s", log.String())
	}
	// The pre-existing benchmarks were still compared.
	if !strings.Contains(log.String(), "benchmarks within") {
		t.Errorf("existing benchmarks not compared:\n%s", log.String())
	}

	// And a regression in an existing benchmark still fails even when
	// new benchmarks are present.
	regressed := strings.Replace(withNew, "2000	     8000.5 ns/op", "2000	    99000.0 ns/op", 1)
	log.Reset()
	if code := run(strings.NewReader(regressed), basePath, "", "", 0.25, &log); code != 1 {
		t.Fatalf("regression alongside new benchmark: exit %d, want 1", code)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	outPath := filepath.Join(dir, "out.json")

	// No baseline on disk: comparison is skipped, snapshot written, exit 0.
	var log bytes.Buffer
	if code := run(strings.NewReader(sampleOut), basePath, outPath, "ci", 0.25, &log); code != 0 {
		t.Fatalf("missing baseline: exit %d, log:\n%s", code, log.String())
	}
	if !strings.Contains(log.String(), "skipping comparison") {
		t.Errorf("missing-baseline run did not report skip: %s", log.String())
	}
	var snap Snapshot
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Note != "ci" || len(snap.Benchmarks) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// Identical run vs that snapshot as baseline: within threshold.
	if err := os.Rename(outPath, basePath); err != nil {
		t.Fatal(err)
	}
	log.Reset()
	if code := run(strings.NewReader(sampleOut), basePath, "", "", 0.25, &log); code != 0 {
		t.Fatalf("identical run: exit %d, log:\n%s", code, log.String())
	}

	// A >25% slowdown on one benchmark fails with exit 1.
	slower := strings.Replace(sampleOut, "2000	     8000.5 ns/op", "2000	    11000.0 ns/op", 1)
	log.Reset()
	if code := run(strings.NewReader(slower), basePath, "", "", 0.25, &log); code != 1 {
		t.Fatalf("regressed run: exit %d, log:\n%s", code, log.String())
	}
	if !strings.Contains(log.String(), "REGRESSION") {
		t.Errorf("regressed run log lacks REGRESSION marker:\n%s", log.String())
	}

	// Garbage input: exit 2.
	if code := run(strings.NewReader("nothing here"), basePath, "", "", 0.25, &log); code != 2 {
		t.Fatalf("garbage input: exit %d", code)
	}
}
