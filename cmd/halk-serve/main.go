// Command halk-serve answers logical queries over HTTP from a trained
// HaLk checkpoint: the checkpoint is loaded once and served until
// SIGTERM, which is the paper's online answer-identification phase
// (Sec. III-H) run as a long-lived service rather than one CLI
// invocation per query.
//
// Usage:
//
//	halk-serve -ckpt nell.ckpt -addr :8080 -approx
//
// -ckpt accepts a checkpoint file or a rotation directory written by
// halk-train -ckpt-dir; a directory resolves to its newest verified
// entry. With -ckpt-watch the path is polled and newer checkpoints are
// hot-reloaded into the running server: verified first, swapped under
// the ranking lock, sharded snapshot and ANN index rebuilt. A corrupt
// or mismatched candidate is rejected — the server keeps answering
// from the previous parameters and counts the failure on
// halk_ckpt_reload_failures_total.
//
// -ingest enables the live-edge write path (POST /v1/edges): batches
// are WAL-logged under -ingest-dir, fine-tuned into the model in the
// background, and published as delta snapshots. Every
// -ingest-persist-every applied segments the fine-tuned state is
// checkpointed to <ingest-dir>/state.ckpt so the WAL can prune; on
// restart that state supersedes -ckpt (clear the directory to re-base).
// -ingest excludes -cluster (the router does not own the embeddings)
// and -ckpt-watch (a hot-reload would discard fine-tuned state).
//
// Endpoints:
//
//	POST /v1/query   {"sparql"|"query"|"structure": ..., "k": 10,
//	                  "mode": "exact"|"approx", "timeout_ms": 2000}
//	GET  /v1/healthz liveness + model identity
//	GET  /v1/stats   request/latency/cache/candidate-pool/checkpoint metrics
//	POST /v1/topology/join   router mode: {"range": N, "node": "host:port"}
//	                  adds a replica in probation (202; admitted after the
//	                  identity probe passes)
//	POST /v1/topology/leave  router mode: {"node": "host:port"} removes a
//	                  replica from the failover pool
//
// In router mode the replica topology is live: besides the join/leave
// endpoints, SIGHUP re-reads -cluster-file and applies the diff
// (-cluster-watch polls its mtime for the same effect), with range
// boundaries fixed — only replica-set membership changes.
//
// Example session:
//
//	halk-serve -ckpt halk.ckpt &
//	curl -s localhost:8080/v1/query -d '{"query": "p[r003](e0007)", "k": 5}'
//	curl -s localhost:8080/v1/stats
//
// On SIGINT/SIGTERM the listener stops accepting requests, in-flight
// queries drain (bounded by -drain), and the process exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/ckpt"
	"github.com/halk-kg/halk/internal/cluster"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/ingest"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/serve"
	"github.com/halk-kg/halk/internal/shard"
)

// datasetFor regenerates the synthetic dataset a checkpoint header
// names. An unknown name is permanent: no retry can make it loadable.
func datasetFor(hdr halk.CheckpointHeader) (*kg.Dataset, error) {
	switch hdr.Dataset {
	case "FB15k":
		return kg.SynthFB15k(hdr.Seed), nil
	case "FB237":
		return kg.SynthFB237(hdr.Seed), nil
	case "NELL":
		return kg.SynthNELL(hdr.Seed), nil
	default:
		return nil, resil.Permanent(fmt.Errorf("unknown dataset %q in checkpoint", hdr.Dataset))
	}
}

// resolveCkpt maps the -ckpt flag to a concrete file: a rotation
// directory resolves to its newest entry (manifest first, directory
// scan as fallback).
func resolveCkpt(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if fi.IsDir() {
		return (&ckpt.Dir{Path: path}).LatestPath()
	}
	return path, nil
}

// classifyLoadErr marks checkpoint-load failures that are properties of
// the bytes on disk — corruption the verified envelope caught, a gob
// stream that does not decode, a header for another model — as
// permanent, so the startup retry loop exits immediately instead of
// re-reading the same bad file with backoff.
func classifyLoadErr(err error) error {
	if err == nil || resil.IsPermanent(err) {
		return err
	}
	if ckpt.IsCorrupt(err) || errors.Is(err, halk.ErrCheckpointCorrupt) || errors.Is(err, halk.ErrCheckpointMismatch) {
		return resil.Permanent(err)
	}
	return err
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("halk-serve: ")

	var (
		ckptPath = flag.String("ckpt", "halk.ckpt", "checkpoint file, or rotation directory written by halk-train -ckpt-dir (serves its newest entry)")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "ranking worker pool size (0 = GOMAXPROCS)")
		cache    = flag.Int("cache", serve.DefaultCacheSize, "answer-cache capacity in entries (negative disables)")
		k        = flag.Int("k", 10, "default number of answers when a request omits k")
		maxK     = flag.Int("maxk", 1000, "cap on per-request k")
		maxBatch = flag.Int("max-batch", serve.DefaultMaxBatch, "cap on the query count of one POST /v1/batch request")
		timeout  = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		approx   = flag.Bool("approx", false, "build the ANN answer index and enable \"mode\": \"approx\"")
		shards   = flag.Int("shards", 0, "shard the entity table and serve exact queries through the scatter-gather engine (0 = single-threaded full scan)")
		shardTO  = flag.Duration("shard-timeout", 0, "per-shard scan deadline; missed shards degrade the response to a partial result (0 = none)")
		drain    = flag.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight requests")
		pprofAt  = flag.String("pprof-addr", "", "separate debug listen address exposing /debug/pprof/ and /metrics (empty disables)")
		slowQ    = flag.Duration("slow-query", 0, "log queries slower than this with their per-stage trace (0 disables)")

		hedge        = flag.Duration("hedge-delay", 0, "hedged-scan delay floor: re-issue a shard scan not back after max(this, the shard's p99 scan latency) and take the first result (0 disables; requires -shards)")
		breaker      = flag.Bool("breaker", false, "guard each shard with a circuit breaker: shards that keep failing are skipped up front until a half-open probe succeeds (requires -shards)")
		brkWindow    = flag.Int("breaker-window", 16, "circuit breaker rolling outcome-window size")
		brkRate      = flag.Float64("breaker-failure-rate", 0.5, "window failure fraction that opens the breaker")
		brkMisses    = flag.Int("breaker-consecutive-misses", 4, "consecutive shard failures that open the breaker (negative disables)")
		brkOpen      = flag.Duration("breaker-open", 250*time.Millisecond, "minimum breaker cool-down; each failed reopen probe adds full-jitter exponential extra")
		brkOpenMax   = flag.Duration("breaker-open-max", 15*time.Second, "cap on the breaker cool-down's jittered extra")
		clusterList  = flag.String("cluster", "", "router mode: comma-separated entity ranges, each a '|'-separated replica set of halk-shard addresses (e.g. \"a:9001|b:9001,a:9002|b:9002\"); exact queries scatter-gather across the ranges and fail over within each replica set")
		clusterFile  = flag.String("cluster-file", "", "router mode: topology file with one entity range per line, the line's whitespace- or '|'-separated addresses being that range's replicas (# comments)")
		clusterWatch = flag.Duration("cluster-watch", 0, "poll -cluster-file's mtime this often and reload membership changes into the running router (0 disables; SIGHUP always reloads)")
		remoteTO     = flag.Duration("remote-timeout", 2*time.Second, "per-attempt replica scan deadline in router mode; a replica that misses it fails over to its next sibling, and a range whose whole replica set is exhausted degrades the response to a partial result (0 = request deadline only)")
		healthEvery  = flag.Duration("health-every", 2*time.Second, "router-mode replica health-poll period (liveness, ranges, checkpoint versions)")
		quorum       = flag.Int("quorum", 0, "router mode: entity ranges that must have a replica on a new entity version before the served version (and cache namespace) flips (0 = majority)")
		maxQueueWait = flag.Duration("max-queue-wait", 0, "admission control: shed requests with 429 when the expected worker-queue wait exceeds min(this, the request deadline) (0 disables)")
		ckptRetries  = flag.Int("ckpt-retries", 3, "checkpoint-load attempts before giving up (full-jitter exponential backoff between attempts; corrupt/mismatched files fail immediately)")
		ckptWatch    = flag.Duration("ckpt-watch", 0, "poll the -ckpt path this often and hot-reload newer checkpoints into the running server (0 disables)")

		ingestOn      = flag.Bool("ingest", false, "enable POST /v1/edges: accepted edge batches are WAL-logged, fine-tuned into the model in the background, and published as delta snapshots")
		ingestDir     = flag.String("ingest-dir", "ingest-wal", "write-ahead-log directory for -ingest (replayed on startup; also holds the persisted state checkpoint)")
		ingestBatch   = flag.Int("ingest-batch", 64, "edges folded into one fine-tune micro-batch (pinned per WAL segment, so changing it never affects replay of already-logged batches)")
		ingestEvery   = flag.Duration("ingest-every", 100*time.Millisecond, "ingest drain poll period (a write also wakes the drainer immediately)")
		ingestPersist = flag.Int("ingest-persist-every", 64, "applied WAL segments between durable state checkpoints (<ingest-dir>/state.ckpt); each one advances the WAL cursor and prunes covered segments (0 disables: segments are kept forever and replayed from the base checkpoint)")
		ingestCompact = flag.Bool("ingest-compact", true, "at startup, remove WAL segments wholly below the durable APPLIED cursor that earlier pruning left behind (crash between cursor write and prune, restored files)")
		ingestArchive = flag.String("ingest-archive", "", "with -ingest-compact, move dead WAL segments to this directory instead of deleting them (empty = delete)")
	)
	flag.Parse()

	if *ingestOn && *ckptWatch > 0 {
		// A hot-reload would swap fine-tuned embeddings for the new
		// checkpoint's while the ingest WAL still claims its edges are
		// applied, and its full shard refresh can be suppressed by an
		// interleaved delta publish that already stamped the new entity
		// version. Re-base instead: stop the server, clear (or re-point)
		// -ingest-dir, restart on the new checkpoint.
		log.Fatal("-ingest and -ckpt-watch are mutually exclusive: a hot-reload would discard fine-tuned state and race delta publication; restart the server to serve a new checkpoint")
	}

	var (
		ds        *kg.Dataset
		m         *halk.Model
		info      halk.FileInfo
		baseDelta []ingest.Record
	)
	lookup := func(hdr halk.CheckpointHeader) (*kg.Graph, error) {
		d, derr := datasetFor(hdr)
		if derr != nil {
			return nil, derr
		}
		ds = d
		return d.Train, nil
	}

	// A persisted ingest state supersedes -ckpt: WAL segments folded into
	// it were pruned, so re-basing on the raw checkpoint would silently
	// lose their acknowledged edges. It must load — falling back to -ckpt
	// on a corrupt state file would lose them just as silently.
	statePath := ingest.StatePath(*ingestDir)
	if *ingestOn {
		if _, serr := os.Stat(statePath); serr == nil {
			var hdr halk.CheckpointHeader
			var err error
			m, hdr, baseDelta, err = ingest.LoadState(statePath, lookup)
			if err != nil {
				log.Fatalf("ingest: persisted state %s: %v (the WAL was pruned against this state; refusing to fall back to -ckpt, which would lose acknowledged edges — restore the file or discard %s to re-base)", statePath, err, *ingestDir)
			}
			info = halk.FileInfo{Path: statePath, Header: hdr, Step: -1}
			log.Printf("ingest: resumed from persisted state %s (%d net delta edges); -ckpt is superseded until %s is cleared", statePath, len(baseDelta), *ingestDir)
		}
	}

	// Transient open/read failures (checkpoint not yet written by
	// halk-train, network filesystems) retry with full-jitter backoff;
	// failures the envelope verification proves permanent — corrupt
	// bytes, wrong dataset — abort the retry loop immediately.
	if m == nil {
		loadBackoff := resil.NewBackoff(200*time.Millisecond, 5*time.Second, time.Now().UnixNano())
		err := resil.Retry(context.Background(), *ckptRetries, loadBackoff, func() error {
			path, err := resolveCkpt(*ckptPath)
			if err != nil {
				log.Printf("checkpoint load: %v (will retry)", err)
				return err
			}
			ds = nil
			m, info, err = halk.LoadCheckpointFile(path, lookup)
			if err = classifyLoadErr(err); err != nil {
				if resil.IsPermanent(err) {
					log.Printf("checkpoint load: %v (permanent, not retrying)", err)
				} else {
					log.Printf("checkpoint load: %v (will retry)", err)
				}
			}
			return err
		})
		if err != nil {
			log.Fatalf("checkpoint load failed: %v", err)
		}
	}
	hdr := info.Header
	log.Printf("loaded %s model (d=%d) trained on %s from %s: %d entities, %d relations",
		m.Name(), hdr.Config.Dim, hdr.Dataset, info.Path, ds.Train.NumEntities(), ds.Train.NumRelations())

	// One registry backs /metrics on the serving mux, /v1/stats, the
	// shard engine's per-shard counters, and the -pprof-addr debug mux.
	reg := obs.NewRegistry()

	// status tracks the served checkpoint's freshness; it feeds the
	// "checkpoint" section of /v1/stats and the halk_ckpt_* gauges.
	// SetLoaded runs before Register so the halk_ckpt_loaded_info
	// identity labels are known at registration time.
	status := ckpt.NewStatus()
	status.SetLoaded(info.Path, hdr.Dataset, hdr.Seed, info.Step, m.EntityVersion())
	status.Register(reg)

	cfg := serve.Config{
		Model:          m,
		Entities:       ds.Train.Entities,
		Relations:      ds.Train.Relations,
		Graph:          ds.Test,
		Workers:        *workers,
		CacheSize:      *cache,
		DefaultK:       *k,
		MaxK:           *maxK,
		MaxBatch:       *maxBatch,
		DefaultTimeout: *timeout,
		Metrics:        reg,
		SlowQuery:      *slowQ,
		MaxQueueWait:   *maxQueueWait,
		Ckpt:           status,
	}
	if *maxQueueWait > 0 {
		log.Printf("admission control enabled: shedding at expected queue wait > %v", *maxQueueWait)
	}
	if *approx {
		cfg.Approx = m.NewAnswerIndex(ann.DefaultConfig(hdr.Seed))
		log.Print("ANN answer index built; \"mode\": \"approx\" enabled")
	}
	topology, err := cluster.ParseTopology(*clusterList, *clusterFile)
	if err != nil {
		log.Fatal(err)
	}
	if len(topology) > 0 && *shards > 0 {
		log.Fatal("-cluster/-cluster-file and -shards are mutually exclusive: exact queries are ranked either by remote nodes or by a local engine")
	}
	brkCfg := func() *resil.BreakerConfig {
		return &resil.BreakerConfig{
			Window:            *brkWindow,
			FailureRate:       *brkRate,
			ConsecutiveMisses: *brkMisses,
			OpenBase:          *brkOpen,
			OpenMax:           *brkOpenMax,
			Seed:              time.Now().UnixNano(),
		}
	}
	var ranker *halk.ShardedRanker
	var router *cluster.Router
	switch {
	case len(topology) > 0:
		// Router mode: the local checkpoint embeds queries; ranking
		// scatter-gathers across the entity ranges, failing over within
		// each range's replica set. The -hedge-delay and -breaker flags
		// apply per replica instead of per local shard.
		rcfg := cluster.Config{
			Ranges: topology,
			Embed: func(n *query.Node) []cluster.ArcSpec {
				arcs := m.EmbedQueryLocked(n)
				specs := make([]cluster.ArcSpec, len(arcs))
				for i, a := range arcs {
					specs[i] = cluster.ArcSpec{C: a.C, L: a.L, Hot: a.Hot}
				}
				return specs
			},
			ScanTimeout: *remoteTO,
			HedgeDelay:  *hedge,
			Quorum:      *quorum,
			HealthEvery: *healthEvery,
			Metrics:     reg,
			Logf:        log.Printf,
		}
		// Identity-probe query: a deterministic sample from the test
		// split, embedded on demand so probes reflect the served
		// parameters. Joining replicas must answer it byte-identically to
		// an active sibling before they enter the failover pool.
		ps := query.NewSampler(ds.Test, rand.New(rand.NewSource(1)))
		for _, kind := range []string{"2p", "1p", "2i"} {
			if q, ok := ps.Sample(kind); ok {
				rcfg.Probe = func() []cluster.ArcSpec { return rcfg.Embed(q) }
				break
			}
		}
		if *breaker {
			rcfg.Breaker = brkCfg()
		}
		router, err = cluster.NewRouter(rcfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Ranker = router
		replicas := 0
		for _, reps := range topology {
			replicas += len(reps)
		}
		log.Printf("cluster router built: %d ranges, %d replicas, remote timeout %v, hedge delay %v, breakers %v, quorum %d",
			len(topology), replicas, *remoteTO, *hedge, *breaker, *quorum)
	case *shards > 0:
		opts := shard.Options{
			Shards:       *shards,
			ShardTimeout: *shardTO,
			Metrics:      reg,
			HedgeDelay:   *hedge,
		}
		if *breaker {
			opts.Breaker = brkCfg()
		}
		ranker, err = m.NewShardedRanker(opts)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Ranker = ranker
		log.Printf("sharded ranking engine built: %d shards, shard timeout %v, hedge delay %v, breakers %v",
			ranker.NumShards(), *shardTO, *hedge, *breaker)
	default:
		if *hedge > 0 || *breaker {
			log.Fatal("-hedge-delay and -breaker require -shards > 0 or -cluster")
		}
	}

	// Live-edge ingest: POST /v1/edges batches are WAL-logged, fine-tuned
	// into the local model by a background drainer, and published as
	// delta snapshots through the same swap machinery hot-reload uses.
	var srv *serve.Server
	var ing *ingest.Ingester
	if *ingestOn {
		if len(topology) > 0 {
			log.Fatal("-ingest requires the local model to own the embeddings; it is incompatible with -cluster router mode")
		}
		wal, err := ingest.OpenWAL(*ingestDir)
		if err != nil {
			log.Fatal(err)
		}
		if q := wal.Quarantined(); q > 0 {
			log.Printf("ingest: quarantined %d corrupt WAL file(s) in %s (renamed *.bad)", q, *ingestDir)
		}
		if *ingestCompact {
			n, err := wal.Compact(*ingestArchive)
			if err != nil {
				log.Fatalf("ingest: WAL compaction: %v", err)
			}
			if n > 0 {
				disposed := "removed"
				if *ingestArchive != "" {
					disposed = "archived to " + *ingestArchive
				}
				log.Printf("ingest: compacted %d dead WAL segment(s) below cursor %d (%s)", n, wal.AppliedSeq(), disposed)
			}
		}
		ing, err = ingest.New(ingest.Config{
			Model:     m,
			WAL:       wal,
			BatchSize: *ingestBatch,
			Interval:  *ingestEvery,
			FineTune:  halk.FineTuneConfig{Seed: hdr.Seed},
			Metrics:   reg,
			Logf:      log.Printf,
			BaseDelta: baseDelta,
			// Persist cuts a durable state checkpoint (embeddings + net
			// graph delta) so the WAL cursor can advance and covered
			// segments prune — without it the log and startup replay grow
			// without bound. Runs on the drain goroutine, the sole mutator
			// of both the parameters and the delta ledger.
			PersistEvery: *ingestPersist,
			Persist: func() error {
				return ingest.SaveState(statePath, m, hdr.Dataset, hdr.Seed, ing.GraphDelta())
			},
			// Publish pushes the fine-tuned rows into whatever the exact
			// path answers from: the sharded engine rebuilds only the
			// shards owning dirty entities; the ANN index (which snapshots
			// embeddings at build time) is rebuilt and swapped. The
			// unsharded full scan reads the live table and needs nothing.
			Publish: func(dirty []kg.EntityID) error {
				if ranker != nil {
					if err := ranker.RefreshDirty(dirty); err != nil {
						return err
					}
				}
				if *approx && srv != nil {
					srv.SetApprox(m.NewAnswerIndex(ann.DefaultConfig(hdr.Seed)))
				}
				return nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Edges = ing
	}
	srv, err = serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if ing != nil {
		// Catch up on edges logged before the last shutdown (or crash)
		// synchronously, so the first served answer already reflects every
		// durably accepted write, then launch the background drainer.
		if n := ing.Stats().PendingSegments; n > 0 {
			log.Printf("ingest: replaying %d pending WAL segment(s) from %s", n, *ingestDir)
		}
		if err := ing.Replay(); err != nil {
			log.Fatalf("ingest: WAL replay: %v", err)
		}
		ing.Start()
		log.Printf("ingest enabled: POST /v1/edges (wal=%s, batch=%d, drain every %v, persist every %d segments)", *ingestDir, *ingestBatch, *ingestEvery, *ingestPersist)
	}

	if *pprofAt != "" {
		dbg, bound, err := obs.ServeDebug(*pprofAt, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug server on %s (/debug/pprof/, /metrics)", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if router != nil {
		// One synchronous sweep before serving so the quorum version (and
		// with it the cache namespace) is populated from the live topology,
		// then the periodic health loop.
		hctx, hcancel := context.WithTimeout(ctx, 5*time.Second)
		up := router.CheckHealth(hctx)
		hcancel()
		total := 0
		for _, reps := range topology {
			total += len(reps)
		}
		log.Printf("cluster health: %d/%d replicas up across %d ranges, serving entity version %d",
			up, total, len(topology), router.SnapshotVersion())
		router.Start(ctx)
	}

	// Live membership from the topology file: SIGHUP reloads it
	// immediately, and -cluster-watch polls its mtime. A reload diffs the
	// file against the running topology — new replicas join in probation,
	// removed ones leave, the range count must not change — and a
	// malformed file is rejected whole, keeping the current topology.
	if router != nil && *clusterFile != "" {
		reloadTopology := func(src string) {
			top, err := cluster.ParseTopology("", *clusterFile)
			if err != nil {
				log.Printf("cluster-reload (%s): %v — keeping current topology", src, err)
				return
			}
			if err := router.SetTopology(top); err != nil {
				log.Printf("cluster-reload (%s): %v — keeping current topology", src, err)
				return
			}
			log.Printf("cluster-reload (%s): topology v%d applied from %s", src, router.TopologyVersion(), *clusterFile)
		}
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			defer signal.Stop(hup)
			mtime := time.Time{}
			if fi, err := os.Stat(*clusterFile); err == nil {
				mtime = fi.ModTime()
			}
			var tickC <-chan time.Time
			if *clusterWatch > 0 {
				tick := time.NewTicker(*clusterWatch)
				defer tick.Stop()
				tickC = tick.C
			}
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					if fi, err := os.Stat(*clusterFile); err == nil {
						mtime = fi.ModTime()
					}
					reloadTopology("SIGHUP")
				case <-tickC:
					fi, err := os.Stat(*clusterFile)
					if err != nil {
						log.Printf("cluster-watch: %v", err)
						continue
					}
					if fi.ModTime().Equal(mtime) {
						continue
					}
					mtime = fi.ModTime()
					reloadTopology("mtime change")
				}
			}
		}()
		if *clusterWatch > 0 {
			log.Printf("cluster watcher polling %s every %v (SIGHUP reloads immediately)", *clusterFile, *clusterWatch)
		} else {
			log.Printf("SIGHUP reloads cluster topology from %s", *clusterFile)
		}
	}

	if *ckptWatch > 0 {
		watcher := ckpt.NewWatcher(*ckptPath)
		watcher.Ack(info.Path)
		go func() {
			tick := time.NewTicker(*ckptWatch)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				path, changed, err := watcher.Poll()
				if err != nil {
					log.Printf("ckpt-watch: %v", err)
					continue
				}
				if !changed {
					continue
				}
				newInfo, err := m.ReloadFromFile(path, hdr.Dataset, hdr.Seed)
				if err != nil {
					// ReloadFromFile swapped nothing: the server keeps
					// answering from the previous parameters. Ack the bad
					// candidate so it is retried only once the path changes
					// again (a new rotation entry, a rewritten file).
					status.ReloadFailed()
					watcher.Ack(path)
					log.Printf("ckpt-watch: reload of %s failed, still serving previous checkpoint: %v", path, err)
					continue
				}
				if ranker != nil {
					if err := ranker.Refresh(); err != nil {
						log.Printf("ckpt-watch: shard snapshot refresh: %v", err)
					}
				}
				if *approx {
					// The ANN index snapshots embeddings at build time;
					// rebuild it over the new table and swap it in.
					srv.SetApprox(m.NewAnswerIndex(ann.DefaultConfig(hdr.Seed)))
				}
				status.SetLoaded(path, hdr.Dataset, hdr.Seed, newInfo.Step, m.EntityVersion())
				watcher.Ack(path)
				log.Printf("ckpt-watch: hot-reloaded %s (step %d, entity version %d)", path, newInfo.Step, m.EntityVersion())
			}
		}()
		log.Printf("checkpoint watcher polling %s every %v", *ckptPath, *ckptWatch)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (workers=%d, cache=%d, timeout=%v)", *addr, srv.Workers(), *cache, *timeout)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("signal received; draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if ing != nil {
		// Drain the ingest loop after the listener stops admitting writes:
		// Close applies what it can, and anything still pending is durable
		// in the WAL and replayed on the next start.
		ing.Close()
	}
	srv.Close()
	log.Print("drained; bye")
}
