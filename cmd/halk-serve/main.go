// Command halk-serve answers logical queries over HTTP from a trained
// HaLk checkpoint: the checkpoint is loaded once and served until
// SIGTERM, which is the paper's online answer-identification phase
// (Sec. III-H) run as a long-lived service rather than one CLI
// invocation per query.
//
// Usage:
//
//	halk-serve -ckpt nell.ckpt -addr :8080 -approx
//
// Endpoints:
//
//	POST /v1/query   {"sparql"|"query"|"structure": ..., "k": 10,
//	                  "mode": "exact"|"approx", "timeout_ms": 2000}
//	GET  /v1/healthz liveness + model identity
//	GET  /v1/stats   request/latency/cache/candidate-pool metrics
//
// Example session:
//
//	halk-serve -ckpt halk.ckpt &
//	curl -s localhost:8080/v1/query -d '{"query": "p[r003](e0007)", "k": 5}'
//	curl -s localhost:8080/v1/stats
//
// On SIGINT/SIGTERM the listener stops accepting requests, in-flight
// queries drain (bounded by -drain), and the process exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/halk-kg/halk/internal/ann"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/obs"
	"github.com/halk-kg/halk/internal/resil"
	"github.com/halk-kg/halk/internal/serve"
	"github.com/halk-kg/halk/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("halk-serve: ")

	var (
		ckpt    = flag.String("ckpt", "halk.ckpt", "checkpoint path written by halk-train")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "ranking worker pool size (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", serve.DefaultCacheSize, "answer-cache capacity in entries (negative disables)")
		k       = flag.Int("k", 10, "default number of answers when a request omits k")
		maxK    = flag.Int("maxk", 1000, "cap on per-request k")
		timeout = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		approx  = flag.Bool("approx", false, "build the ANN answer index and enable \"mode\": \"approx\"")
		shards  = flag.Int("shards", 0, "shard the entity table and serve exact queries through the scatter-gather engine (0 = single-threaded full scan)")
		shardTO = flag.Duration("shard-timeout", 0, "per-shard scan deadline; missed shards degrade the response to a partial result (0 = none)")
		drain   = flag.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight requests")
		pprofAt = flag.String("pprof-addr", "", "separate debug listen address exposing /debug/pprof/ and /metrics (empty disables)")
		slowQ   = flag.Duration("slow-query", 0, "log queries slower than this with their per-stage trace (0 disables)")

		hedge        = flag.Duration("hedge-delay", 0, "hedged-scan delay floor: re-issue a shard scan not back after max(this, the shard's p99 scan latency) and take the first result (0 disables; requires -shards)")
		breaker      = flag.Bool("breaker", false, "guard each shard with a circuit breaker: shards that keep failing are skipped up front until a half-open probe succeeds (requires -shards)")
		brkWindow    = flag.Int("breaker-window", 16, "circuit breaker rolling outcome-window size")
		brkRate      = flag.Float64("breaker-failure-rate", 0.5, "window failure fraction that opens the breaker")
		brkMisses    = flag.Int("breaker-consecutive-misses", 4, "consecutive shard failures that open the breaker (negative disables)")
		brkOpen      = flag.Duration("breaker-open", 250*time.Millisecond, "minimum breaker cool-down; each failed reopen probe adds full-jitter exponential extra")
		brkOpenMax   = flag.Duration("breaker-open-max", 15*time.Second, "cap on the breaker cool-down's jittered extra")
		maxQueueWait = flag.Duration("max-queue-wait", 0, "admission control: shed requests with 429 when the expected worker-queue wait exceeds min(this, the request deadline) (0 disables)")
		ckptRetries  = flag.Int("ckpt-retries", 3, "checkpoint-load attempts before giving up (full-jitter exponential backoff between attempts)")
	)
	flag.Parse()

	// Transient open/read failures (checkpoint still being written by
	// halk-train, network filesystems) retry with full-jitter backoff
	// instead of failing the process on the first miss.
	var ds *kg.Dataset
	var m *halk.Model
	var hdr halk.CheckpointHeader
	loadBackoff := resil.NewBackoff(200*time.Millisecond, 5*time.Second, time.Now().UnixNano())
	err := resil.Retry(context.Background(), *ckptRetries, loadBackoff, func() error {
		f, err := os.Open(*ckpt)
		if err != nil {
			log.Printf("checkpoint load: %v (will retry)", err)
			return err
		}
		defer f.Close()
		ds = nil
		m, hdr, err = halk.LoadCheckpoint(f, func(hdr halk.CheckpointHeader) (*kg.Graph, error) {
			switch hdr.Dataset {
			case "FB15k":
				ds = kg.SynthFB15k(hdr.Seed)
			case "FB237":
				ds = kg.SynthFB237(hdr.Seed)
			case "NELL":
				ds = kg.SynthNELL(hdr.Seed)
			default:
				return nil, fmt.Errorf("unknown dataset %q in checkpoint", hdr.Dataset)
			}
			return ds.Train, nil
		})
		if err != nil {
			log.Printf("checkpoint load: %v (will retry)", err)
		}
		return err
	})
	if err != nil {
		log.Fatalf("checkpoint load failed after %d attempts: %v", *ckptRetries, err)
	}
	log.Printf("loaded %s model (d=%d) trained on %s: %d entities, %d relations",
		m.Name(), hdr.Config.Dim, hdr.Dataset, ds.Train.NumEntities(), ds.Train.NumRelations())

	// One registry backs /metrics on the serving mux, /v1/stats, the
	// shard engine's per-shard counters, and the -pprof-addr debug mux.
	reg := obs.NewRegistry()

	cfg := serve.Config{
		Model:          m,
		Entities:       ds.Train.Entities,
		Relations:      ds.Train.Relations,
		Graph:          ds.Test,
		Workers:        *workers,
		CacheSize:      *cache,
		DefaultK:       *k,
		MaxK:           *maxK,
		DefaultTimeout: *timeout,
		Metrics:        reg,
		SlowQuery:      *slowQ,
		MaxQueueWait:   *maxQueueWait,
	}
	if *maxQueueWait > 0 {
		log.Printf("admission control enabled: shedding at expected queue wait > %v", *maxQueueWait)
	}
	if *approx {
		cfg.Approx = m.NewAnswerIndex(ann.DefaultConfig(hdr.Seed))
		log.Print("ANN answer index built; \"mode\": \"approx\" enabled")
	}
	if *shards > 0 {
		opts := shard.Options{
			Shards:       *shards,
			ShardTimeout: *shardTO,
			Metrics:      reg,
			HedgeDelay:   *hedge,
		}
		if *breaker {
			opts.Breaker = &resil.BreakerConfig{
				Window:            *brkWindow,
				FailureRate:       *brkRate,
				ConsecutiveMisses: *brkMisses,
				OpenBase:          *brkOpen,
				OpenMax:           *brkOpenMax,
				Seed:              time.Now().UnixNano(),
			}
		}
		ranker, err := m.NewShardedRanker(opts)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Ranker = ranker
		log.Printf("sharded ranking engine built: %d shards, shard timeout %v, hedge delay %v, breakers %v",
			ranker.NumShards(), *shardTO, *hedge, *breaker)
	} else if *hedge > 0 || *breaker {
		log.Fatal("-hedge-delay and -breaker require -shards > 0")
	}
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *pprofAt != "" {
		dbg, bound, err := obs.ServeDebug(*pprofAt, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug server on %s (/debug/pprof/, /metrics)", bound)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (workers=%d, cache=%d, timeout=%v)", *addr, srv.Workers(), *cache, *timeout)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("signal received; draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	log.Print("drained; bye")
}
