// Command halk-query answers logical queries with a trained HaLk
// checkpoint, either from a SPARQL string (executed through the Adaptor
// of Sec. IV-F) or by sampling a named query structure.
//
// Usage:
//
//	halk-query -ckpt nell.ckpt -sparql 'SELECT ?x WHERE { :e0007 :r003 ?y . ?y :r010 ?x }'
//	halk-query -ckpt nell.ckpt -structure pi -k 10
//
// Each invocation reloads the checkpoint. For repeated queries against
// one checkpoint, run halk-serve instead: it loads the model once and
// answers the same three query forms over HTTP with caching and
// per-request deadlines. With -server the checkpoint is skipped
// entirely and the query is posted to a running halk-serve (or
// halk-shard) process instead:
//
//	halk-query -server localhost:8080 -structure pi -k 10
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"github.com/halk-kg/halk/internal/cluster"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/sparql"
	"github.com/halk-kg/halk/internal/viz"
)

// queryServer posts the query to a running halk-serve or halk-shard
// process through the cluster wire protocol and prints the ranked
// answers. No checkpoint is loaded, so there is no local ground truth
// to mark.
func queryServer(server, sparqlSrc, dsl, structure string, seed int64, k int, timeout time.Duration) {
	base := strings.TrimSuffix(server, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	req := &cluster.QueryRequest{
		SPARQL:    sparqlSrc,
		Query:     dsl,
		Structure: structure,
		K:         k,
		TimeoutMS: int(timeout / time.Millisecond),
	}
	if structure != "" {
		req.Seed = seed
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout+2*time.Second)
	defer cancel()
	var resp cluster.QueryResponse
	if err := cluster.DoJSON(ctx, cluster.NewHTTPClient(), http.MethodPost, base+"/v1/query", req, &resp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", resp.Query)
	if resp.Canonical != "" && resp.Canonical != resp.Query {
		fmt.Printf("canonical: %s\n", resp.Canonical)
	}
	note := ""
	if resp.Partial {
		note = " (partial: some shards did not answer)"
	}
	if resp.Hi > resp.Lo {
		note += fmt.Sprintf(" (entities [%d, %d) only)", resp.Lo, resp.Hi)
	}
	fmt.Printf("%d answers from %s in %.1fms%s\n", len(resp.Answers), base, resp.ElapsedMs, note)
	for rank, a := range resp.Answers {
		if a.Distance != nil {
			fmt.Printf("%2d. %-12s d=%.4f\n", rank+1, a.Entity, *a.Distance)
		} else {
			fmt.Printf("%2d. %s\n", rank+1, a.Entity)
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("halk-query: ")

	var (
		ckpt      = flag.String("ckpt", "halk.ckpt", "checkpoint path written by halk-train")
		sparqlSrc = flag.String("sparql", "", "SPARQL query to answer")
		dsl       = flag.String("query", "", "or: a query in the prefix DSL, e.g. 'i(p[r003](e0007), p[r010](e0042))'")
		structure = flag.String("structure", "", "or: sample one query of this structure (e.g. pi)")
		k         = flag.Int("k", 10, "number of answers to print")
		vizDim    = flag.Int("viz", -1, "render this embedding dimension as an ASCII circle")
		seed      = flag.Int64("qseed", 7, "sampling seed for -structure")
		server    = flag.String("server", "", "query a running halk-serve or halk-shard at this address over HTTP instead of loading a checkpoint")
		timeout   = flag.Duration("timeout", 10*time.Second, "request deadline for -server")
	)
	flag.Parse()

	if *server != "" {
		if *sparqlSrc == "" && *dsl == "" && *structure == "" {
			log.Fatal("pass -sparql, -query or -structure")
		}
		queryServer(*server, *sparqlSrc, *dsl, *structure, *seed, *k, *timeout)
		return
	}

	// LoadCheckpointFile verifies the envelope (length, checksum) before
	// decoding, so a truncated or bit-flipped checkpoint fails with a
	// clear typed error instead of a half-decoded model; bare-gob files
	// from older halk-train builds still load through the legacy path.
	var ds *kg.Dataset
	m, info, err := halk.LoadCheckpointFile(*ckpt, func(hdr halk.CheckpointHeader) (*kg.Graph, error) {
		switch hdr.Dataset {
		case "FB15k":
			ds = kg.SynthFB15k(hdr.Seed)
		case "FB237":
			ds = kg.SynthFB237(hdr.Seed)
		case "NELL":
			ds = kg.SynthNELL(hdr.Seed)
		default:
			return nil, fmt.Errorf("unknown dataset %q in checkpoint", hdr.Dataset)
		}
		return ds.Train, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	hdr := info.Header
	log.Printf("loaded %s model (d=%d) trained on %s", m.Name(), hdr.Config.Dim, hdr.Dataset)

	var root *query.Node
	switch {
	case *sparqlSrc != "":
		pq, err := sparql.Parse(*sparqlSrc)
		if err != nil {
			log.Fatal(err)
		}
		a := &sparql.Adaptor{Entities: ds.Train.Entities, Relations: ds.Train.Relations}
		root, err = a.Compile(pq)
		if err != nil {
			log.Fatal(err)
		}
	case *dsl != "":
		root, err = query.Parse(*dsl, ds.Train.Entities, ds.Train.Relations)
		if err != nil {
			log.Fatal(err)
		}
	case *structure != "":
		if !query.HasStructure(*structure) {
			log.Fatalf("unknown structure %q; known: %v", *structure, query.StructureNames())
		}
		s := query.NewSampler(ds.Test, rand.New(rand.NewSource(*seed)))
		var ok bool
		root, ok = s.Sample(*structure)
		if !ok {
			log.Fatalf("could not sample a %s query", *structure)
		}
	default:
		log.Fatal("pass -sparql, -query or -structure")
	}

	fmt.Printf("query: %s\n", root)
	truth := query.Answers(root, ds.Test)
	fmt.Printf("ground truth (test graph): %d answers\n", len(truth))

	for rank, e := range m.TopK(root, *k) {
		mark := " "
		if truth.Has(e) {
			mark = "*"
		}
		fmt.Printf("%2d. %s %s\n", rank+1, ds.Train.Entities.Name(int32(e)), mark)
	}
	fmt.Println("(* = true answer on the test graph)")

	if *vizDim >= 0 && *vizDim < hdr.Config.Dim {
		arcs := m.EmbedQuery(root)
		var pts [][]float64
		for _, e := range m.TopK(root, 6) {
			pts = append(pts, m.EntityAngles(e))
		}
		fmt.Printf("\nembedding dimension %d (labels = top answers in rank order):\n", *vizDim)
		fmt.Print(viz.Dimension(*vizDim, hdr.Config.Rho, arcs[0].C, arcs[0].L, pts))
	}
}
