module github.com/halk-kg/halk

go 1.22
