// Package-level benchmarks: one per table and figure of the paper's
// evaluation (Sec. IV). Each benchmark regenerates its experiment
// through the shared bench.Suite at smoke budgets (QuickConfig), so
// `go test -bench=.` exercises every experiment pipeline end to end in
// minutes; the paper-scale numbers come from `go run ./cmd/halk-bench
// -all`, which uses the same code with full budgets.
//
// Model training is done once in the shared suite and excluded from the
// timed region: the benchmarks measure experiment regeneration (query
// embedding, ranking, matching), which is the online cost the paper
// reports.
package halk_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"github.com/halk-kg/halk/internal/bench"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/shard"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
)

func sharedSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = bench.NewSuite(bench.QuickConfig(1))
		// Pre-train every model/dataset pair used by the experiments so
		// no benchmark pays training time inside its timed loop.
		for _, ds := range suite.Datasets {
			for _, method := range bench.MethodsAll {
				suite.Model(ds, method)
			}
		}
		for _, v := range []string{"HaLk-V1", "HaLk-V2", "HaLk-V3"} {
			suite.Model(suite.Dataset("NELL"), v)
		}
	})
	return suite
}

// reportHaLkAverage extracts the HaLk row average from a dataset×method
// table and reports it as a benchmark metric, so regressions in model
// quality are visible in benchmark output.
func reportHaLkAverage(b *testing.B, t *bench.Table, metric string) {
	b.Helper()
	for _, row := range t.Rows {
		if len(row) >= 3 && row[1] == "HaLk" {
			if v, err := strconv.ParseFloat(row[len(row)-1], 64); err == nil {
				b.ReportMetric(v, metric)
			}
			return
		}
	}
}

func benchTable(b *testing.B, run func(s *bench.Suite) *bench.Table, metric string) {
	s := sharedSuite(b)
	var last *bench.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = run(s)
	}
	b.StopTimer()
	if metric != "" {
		reportHaLkAverage(b, last, metric)
	}
	if testing.Verbose() {
		fmt.Println(last.String())
	}
}

func BenchmarkTable1MRR(b *testing.B) {
	benchTable(b, (*bench.Suite).Table1, "HaLk-avg-MRR-%")
}

func BenchmarkTable2Hit3(b *testing.B) {
	benchTable(b, (*bench.Suite).Table2, "HaLk-avg-Hit3-%")
}

func BenchmarkTable3NegMRR(b *testing.B) {
	benchTable(b, (*bench.Suite).Table3, "HaLk-avg-negMRR-%")
}

func BenchmarkTable4NegHit3(b *testing.B) {
	benchTable(b, (*bench.Suite).Table4, "HaLk-avg-negHit3-%")
}

func BenchmarkTable5Ablation(b *testing.B) {
	benchTable(b, (*bench.Suite).Table5, "")
}

func BenchmarkTable6Scalability(b *testing.B) {
	benchTable(b, (*bench.Suite).Table6, "")
}

func BenchmarkFig6aPruning(b *testing.B) {
	benchTable(b, (*bench.Suite).Fig6a, "")
}

func BenchmarkFig6bOffline(b *testing.B) {
	benchTable(b, (*bench.Suite).Fig6b, "")
}

func BenchmarkFig6cOnline(b *testing.B) {
	benchTable(b, (*bench.Suite).Fig6c, "")
}

// Supplementary experiments beyond the paper's tables (see EXPERIMENTS.md).

func BenchmarkObservationDiffVsNeg(b *testing.B) {
	benchTable(b, (*bench.Suite).Observation, "")
}

func BenchmarkCardinalitySemantics(b *testing.B) {
	benchTable(b, (*bench.Suite).Cardinality, "")
}

// BenchmarkShardedDistances compares exact top-10 ranking through the
// scatter-gather shard engine against the single-threaded full scan,
// sweeping shard counts. Two effects are visible: heap-bound pruning
// (the sharded scan abandons entities whose partial sum already exceeds
// the k-th best, on any core count) and parallel shard scans (needs
// GOMAXPROCS > 1). The fullscan sub-benchmark is the baseline.
func BenchmarkShardedDistances(b *testing.B) {
	ds := kg.SynthFB15k(3)
	cfg := halk.DefaultConfig(3)
	cfg.Dim, cfg.Hidden = 64, 64
	m := halk.New(ds.Train, cfg)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(4)))
	q, ok := s.Sample("2i")
	if !ok {
		b.Fatal("sampling failed")
	}
	const k = 10

	b.Run("fullscan", func(b *testing.B) {
		m.TopK(q, k) // warm the trig cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.TopK(q, k)
		}
	})

	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	ctx := context.Background()
	for _, n := range counts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			r, err := m.NewShardedRanker(shard.Options{Shards: n})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.RankTopK(ctx, q, k); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.RankTopK(ctx, q, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// embed-only is the query-embedding forward pass every exact path
	// pays before any scan; subtract it from the end-to-end numbers to
	// compare scan costs. The scan-only group below hoists it out of the
	// loop entirely, isolating the entity scan that sharding changes.
	b.Run("embed-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.EmbedQuery(q)
		}
	})
	p := shard.Params{Dim: cfg.Dim, Rho: cfg.Rho, Eta: cfg.Eta, Xi: cfg.Xi}
	arcs := make([]shard.Arc, 0, 2)
	for _, a := range m.EmbedQuery(q) {
		arcs = append(arcs, shard.PrepareArc(p, a.C, a.L, a.Hot))
	}
	group := make([]int32, ds.Train.NumEntities())
	for e := range group {
		group[e] = int32(m.Grouping().GroupOf(kg.EntityID(e)))
	}
	angles := make([]float64, ds.Train.NumEntities()*cfg.Dim)
	for e := 0; e < ds.Train.NumEntities(); e++ {
		copy(angles[e*cfg.Dim:], m.EntityAngles(kg.EntityID(e)))
	}
	for _, n := range counts {
		b.Run(fmt.Sprintf("scan-only/shards=%d", n), func(b *testing.B) {
			eng := shard.NewEngine(p, shard.Options{Shards: n})
			if err := eng.Swap(shard.Source{Angles: angles, Group: group, Version: 1}); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.TopK(ctx, arcs, k); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.TopK(ctx, arcs, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchedDistances compares batched exact ranking against a
// sequential loop of single-query scans on the same engine: each op
// ranks the same 8 mixed-structure queries, either one Engine.TopK at a
// time or through one Engine.RankBatch, which prepares the batch once
// and sweeps every cache-resident entity block for all queries before
// moving on. Answers are bit-identical (see shard.TestRankBatchIdentity);
// the difference is per-scan overhead and memory traffic.
func BenchmarkBatchedDistances(b *testing.B) {
	ds := kg.SynthFB15k(3)
	cfg := halk.DefaultConfig(3)
	cfg.Dim, cfg.Hidden = 64, 64
	m := halk.New(ds.Train, cfg)
	s := query.NewSampler(ds.Train, rand.New(rand.NewSource(4)))
	const k = 10

	p := shard.Params{Dim: cfg.Dim, Rho: cfg.Rho, Eta: cfg.Eta, Xi: cfg.Xi}
	var items []shard.BatchItem
	for _, structure := range []string{"2i", "1p", "pi", "2p", "2i", "3i", "1p", "pi"} {
		q, ok := s.Sample(structure)
		if !ok {
			b.Fatalf("sampling %s failed", structure)
		}
		var arcs []shard.Arc
		for _, a := range m.EmbedQuery(q) {
			arcs = append(arcs, shard.PrepareArc(p, a.C, a.L, a.Hot))
		}
		items = append(items, shard.BatchItem{Arcs: arcs, K: k})
	}
	group := make([]int32, ds.Train.NumEntities())
	for e := range group {
		group[e] = int32(m.Grouping().GroupOf(kg.EntityID(e)))
	}
	angles := make([]float64, ds.Train.NumEntities()*cfg.Dim)
	for e := 0; e < ds.Train.NumEntities(); e++ {
		copy(angles[e*cfg.Dim:], m.EntityAngles(kg.EntityID(e)))
	}

	ctx := context.Background()
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	for _, n := range counts {
		eng := shard.NewEngine(p, shard.Options{Shards: n})
		if err := eng.Swap(shard.Source{Angles: angles, Group: group, Version: 1}); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("sequential/shards=%d", n), func(b *testing.B) {
			if _, err := eng.TopK(ctx, items[0].Arcs, k); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, it := range items {
					if _, err := eng.TopK(ctx, it.Arcs, it.K); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("batch=8/shards=%d", n), func(b *testing.B) {
			if _, err := eng.RankBatch(ctx, items); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.RankBatch(ctx, items); err != nil {
					b.Fatal(err)
				}
			}
		})
		eng.Close()
	}
}
