// Package-level benchmarks: one per table and figure of the paper's
// evaluation (Sec. IV). Each benchmark regenerates its experiment
// through the shared bench.Suite at smoke budgets (QuickConfig), so
// `go test -bench=.` exercises every experiment pipeline end to end in
// minutes; the paper-scale numbers come from `go run ./cmd/halk-bench
// -all`, which uses the same code with full budgets.
//
// Model training is done once in the shared suite and excluded from the
// timed region: the benchmarks measure experiment regeneration (query
// embedding, ranking, matching), which is the online cost the paper
// reports.
package halk_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"github.com/halk-kg/halk/internal/bench"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
)

func sharedSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = bench.NewSuite(bench.QuickConfig(1))
		// Pre-train every model/dataset pair used by the experiments so
		// no benchmark pays training time inside its timed loop.
		for _, ds := range suite.Datasets {
			for _, method := range bench.MethodsAll {
				suite.Model(ds, method)
			}
		}
		for _, v := range []string{"HaLk-V1", "HaLk-V2", "HaLk-V3"} {
			suite.Model(suite.Dataset("NELL"), v)
		}
	})
	return suite
}

// reportHaLkAverage extracts the HaLk row average from a dataset×method
// table and reports it as a benchmark metric, so regressions in model
// quality are visible in benchmark output.
func reportHaLkAverage(b *testing.B, t *bench.Table, metric string) {
	b.Helper()
	for _, row := range t.Rows {
		if len(row) >= 3 && row[1] == "HaLk" {
			if v, err := strconv.ParseFloat(row[len(row)-1], 64); err == nil {
				b.ReportMetric(v, metric)
			}
			return
		}
	}
}

func benchTable(b *testing.B, run func(s *bench.Suite) *bench.Table, metric string) {
	s := sharedSuite(b)
	var last *bench.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = run(s)
	}
	b.StopTimer()
	if metric != "" {
		reportHaLkAverage(b, last, metric)
	}
	if testing.Verbose() {
		fmt.Println(last.String())
	}
}

func BenchmarkTable1MRR(b *testing.B) {
	benchTable(b, (*bench.Suite).Table1, "HaLk-avg-MRR-%")
}

func BenchmarkTable2Hit3(b *testing.B) {
	benchTable(b, (*bench.Suite).Table2, "HaLk-avg-Hit3-%")
}

func BenchmarkTable3NegMRR(b *testing.B) {
	benchTable(b, (*bench.Suite).Table3, "HaLk-avg-negMRR-%")
}

func BenchmarkTable4NegHit3(b *testing.B) {
	benchTable(b, (*bench.Suite).Table4, "HaLk-avg-negHit3-%")
}

func BenchmarkTable5Ablation(b *testing.B) {
	benchTable(b, (*bench.Suite).Table5, "")
}

func BenchmarkTable6Scalability(b *testing.B) {
	benchTable(b, (*bench.Suite).Table6, "")
}

func BenchmarkFig6aPruning(b *testing.B) {
	benchTable(b, (*bench.Suite).Fig6a, "")
}

func BenchmarkFig6bOffline(b *testing.B) {
	benchTable(b, (*bench.Suite).Fig6b, "")
}

func BenchmarkFig6cOnline(b *testing.B) {
	benchTable(b, (*bench.Suite).Fig6c, "")
}

// Supplementary experiments beyond the paper's tables (see EXPERIMENTS.md).

func BenchmarkObservationDiffVsNeg(b *testing.B) {
	benchTable(b, (*bench.Suite).Observation, "")
}

func BenchmarkCardinalitySemantics(b *testing.B) {
	benchTable(b, (*bench.Suite).Cardinality, "")
}
