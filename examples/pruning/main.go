// Pruning: HaLk as a pruner for subgraph matching (Sec. IV-D). A trained
// model supplies top-k candidate entities per query variable; the
// GFinder-style matcher then searches only the induced candidate space,
// cutting its online time at a small accuracy cost.
//
//	go run ./examples/pruning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/halk-kg/halk/internal/eval"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/match"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

const topK = 50

func main() {
	log.SetFlags(0)

	ds := kg.SynthNELL(1)
	fmt.Printf("dataset %s: %d entities, %d relations\n",
		ds.Name, ds.Train.NumEntities(), ds.Train.NumRelations())

	cfg := halk.DefaultConfig(2)
	cfg.Dim, cfg.Hidden = 32, 48
	cfg.Gamma = 24 * float64(cfg.Dim) / 800
	m := halk.New(ds.Train, cfg)
	tc := model.DefaultTrainConfig(3)
	tc.Steps = 1000
	if _, err := model.Train(m, ds.Train, tc); err != nil {
		log.Fatal(err)
	}

	gf := match.New(ds.Train)
	rng := rand.New(rand.NewSource(4))
	for _, structure := range []string{"2ipp", "3ipp"} {
		w := query.Workload(structure, 10, ds.Train, ds.Test, rng)
		if len(w) == 0 {
			continue
		}
		run := func(opts func(q *query.Query) match.Options) (acc float64, avg time.Duration) {
			var total time.Duration
			for i := range w {
				o := opts(&w[i]) // candidate generation happens here, untimed
				start := time.Now()
				res := gf.Execute(w[i].Root, o)
				total += time.Since(start)
				acc += eval.SetAccuracy(res.Answers, w[i].Answers)
			}
			return acc / float64(len(w)), total / time.Duration(len(w))
		}

		accBefore, timeBefore := run(func(*query.Query) match.Options { return match.Options{} })
		accAfter, timeAfter := run(func(q *query.Query) match.Options {
			restrict := make(query.Set)
			for _, cands := range m.CandidatesPerNode(q.Root, topK) {
				for _, e := range cands {
					restrict[e] = struct{}{}
				}
			}
			for _, a := range q.Root.Anchors() {
				restrict[a] = struct{}{}
			}
			return match.Options{Restrict: restrict}
		})

		fmt.Printf("\n%s over %d queries:\n", structure, len(w))
		fmt.Printf("  GFinder unpruned:     accuracy %5.1f%%  time %8v\n", 100*accBefore, timeBefore)
		fmt.Printf("  GFinder + HaLk top-%d: accuracy %5.1f%%  time %8v\n", topK, 100*accAfter, timeAfter)
	}
}
