// Quickstart: build a knowledge graph, train HaLk, answer a multi-hop
// logical query, and compare against the exact ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/halk-kg/halk/internal/eval"
	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

func main() {
	log.SetFlags(0)

	// 1. A knowledge graph. SynthFB237 is the FB15k-237 stand-in:
	//    train ⊆ valid ⊆ test graphs sharing one entity/relation space.
	ds := kg.SynthFB237(1)
	fmt.Printf("dataset %s: %d entities, %d relations, %d train triples\n",
		ds.Name, ds.Train.NumEntities(), ds.Train.NumRelations(), ds.Train.NumTriples())

	// 2. A HaLk model over the training graph. The config controls the
	//    arc embedding dimensionality and the loss hyper-parameters.
	cfg := halk.DefaultConfig(1)
	cfg.Dim, cfg.Hidden = 32, 48
	cfg.Gamma = 24 * float64(cfg.Dim) / 800
	m := halk.New(ds.Train, cfg)
	fmt.Printf("model: %d parameters\n", m.Params().Count())

	// 3. Train with the structure-batched loop of Algorithm 1 (budget
	//    reduced here so the example finishes in under a minute).
	tc := model.DefaultTrainConfig(2)
	tc.Steps = 1200
	res, err := model.Train(m, ds.Train, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d steps in %v\n\n", res.Steps, res.Elapsed)

	// 4. Answer a two-hop query sampled from the *test* graph: its hard
	//    answers require edges the model never saw.
	rng := rand.New(rand.NewSource(3))
	qs := query.Workload("2p", 1, ds.Train, ds.Test, rng)
	q := qs[0]
	fmt.Printf("query: %s\n", q.Root)
	fmt.Printf("answers on test graph: %d (%d hard)\n", len(q.Answers), len(q.HardAnswers))

	top := m.TopK(q.Root, 10)
	fmt.Println("model's top 10:")
	for i, e := range top {
		mark := " "
		if q.Answers.Has(e) {
			mark = "*"
		}
		fmt.Printf("  %2d. %-8s %s\n", i+1, ds.Train.Entities.Name(int32(e)), mark)
	}

	// 5. Standard metrics over a small evaluation workload.
	evalQs := query.Workload("2p", 20, ds.Train, ds.Test, rng)
	mt := eval.Evaluate(m, evalQs)
	fmt.Printf("\n2p over %d hard answers: MRR %.3f, Hit@3 %.3f (%v per query)\n",
		mt.N, mt.MRR, mt.Hits3, mt.AvgQueryTime)
}
