// Sparqlexec: the Fig. 7 pipeline — a SPARQL query is parsed, mapped to
// logical operators by the Adaptor, and executed both by a trained HaLk
// model (embedding executor) and by the GFinder-style subgraph matcher,
// showing the two executors' answers side by side.
//
//	go run ./examples/sparqlexec
package main

import (
	"fmt"
	"log"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/match"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
	"github.com/halk-kg/halk/internal/sparql"
)

func main() {
	log.SetFlags(0)

	ds := kg.SynthFB237(1)
	g := ds.Train

	// Find a 2-hop path (a --r1--> b --r2--> c) to build a SPARQL query
	// whose pattern is guaranteed to resolve against the graph.
	var srcName, r1Name, r2Name string
	found := false
	for _, tr := range g.Triples() {
		for r2 := 0; r2 < g.NumRelations() && !found; r2++ {
			if len(g.Successors(tr.T, kg.RelationID(r2))) > 0 {
				srcName = g.Entities.Name(int32(tr.H))
				r1Name = g.Relations.Name(int32(tr.R))
				r2Name = g.Relations.Name(int32(r2))
				found = true
			}
		}
		if found {
			break
		}
	}
	if !found {
		log.Fatal("no 2-hop path in graph")
	}

	src := fmt.Sprintf(`SELECT ?x WHERE { :%s :%s ?y . ?y :%s ?x }`, srcName, r1Name, r2Name)
	fmt.Printf("SPARQL: %s\n\n", src)

	// Parse + Adaptor: graph patterns -> logical operators (Fig. 7b).
	pq, err := sparql.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	adaptor := &sparql.Adaptor{Entities: g.Entities, Relations: g.Relations}
	root, err := adaptor.Compile(pq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logical query: %s\n", root)

	truth := query.Answers(root, ds.Test)
	fmt.Printf("ground truth on test graph: %d answers\n\n", len(truth))

	// Executor 1: the GFinder-style subgraph matcher (exact on the
	// observed graph, blind to held-out edges).
	gf := match.New(g)
	res := gf.Execute(root, match.Options{})
	fmt.Printf("GFinder executor: %d answers (filter ops %d, search steps %d)\n",
		len(res.Answers), res.FilterOps, res.SearchSteps)

	// Executor 2: HaLk embeddings (robust to missing edges).
	cfg := halk.DefaultConfig(2)
	cfg.Dim, cfg.Hidden = 32, 48
	cfg.Gamma = 24 * float64(cfg.Dim) / 800
	m := halk.New(g, cfg)
	tc := model.DefaultTrainConfig(3)
	tc.Steps = 1000
	if _, err := model.Train(m, g, tc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHaLk executor top 10:")
	for i, e := range m.TopK(root, 10) {
		mark := " "
		if truth.Has(e) {
			mark = "*"
		}
		fmt.Printf("  %2d. %-8s %s\n", i+1, g.Entities.Name(int32(e)), mark)
	}
	fmt.Println("(* = true answer on the test graph)")
}
