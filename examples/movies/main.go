// Movies: the paper's running example (Fig. 1) — "What are the films
// directed by Oscar-winning American directors?" — on a hand-built movie
// knowledge graph, answered end-to-end by HaLk.
//
// The natural-language question becomes the ip-structured computation
// graph
//
//	proj[directed]( inter( proj[awardWonBy](Oscar),
//	                       proj[nationalOf](USA) ) )
//
//	go run ./examples/movies
package main

import (
	"fmt"
	"log"

	"github.com/halk-kg/halk/internal/halk"
	"github.com/halk-kg/halk/internal/kg"
	"github.com/halk-kg/halk/internal/model"
	"github.com/halk-kg/halk/internal/query"
)

func main() {
	log.SetFlags(0)

	g, names := buildMovieKG()
	fmt.Printf("movie KG: %d entities, %d relations, %d facts\n",
		g.NumEntities(), g.NumRelations(), g.NumTriples())

	// Train HaLk to memorise the graph (a closed-world demo: the graph
	// is complete, so the model only needs to recover exact answers).
	cfg := halk.DefaultConfig(5)
	cfg.Dim, cfg.Hidden, cfg.NumGroups = 24, 32, 4
	cfg.Gamma = 24 * float64(cfg.Dim) / 800
	// With only 4 random groups on a tiny closed-world graph the group
	// filter is coarse; keep its weight modest.
	cfg.Xi = 2
	m := halk.New(g, cfg)
	tc := model.DefaultTrainConfig(6)
	tc.Steps = 3000
	tc.Structures = []string{"1p", "1p", "2p", "2i", "ip"}
	if _, err := model.Train(m, g, tc); err != nil {
		log.Fatal(err)
	}

	// The question as a computation graph (Fig. 1b).
	oscar := names.entity("Oscar")
	usa := names.entity("USA")
	q := query.NewProjection(names.relation("directed"),
		query.NewIntersection(
			query.NewProjection(names.relation("awardWonBy"), query.NewAnchor(oscar)),
			query.NewProjection(names.relation("nationalOf"), query.NewAnchor(usa)),
		))
	fmt.Printf("\nquery: %s\n", q)

	truth := query.Answers(q, g)
	fmt.Printf("ground truth: %d films\n", len(truth))
	for _, e := range truth.Slice() {
		fmt.Printf("  - %s\n", g.Entities.Name(int32(e)))
	}

	fmt.Println("\nHaLk's top answers:")
	for i, e := range m.TopK(q, len(truth)+2) {
		mark := " "
		if truth.Has(e) {
			mark = "*"
		}
		fmt.Printf("  %2d. %-22s %s\n", i+1, g.Entities.Name(int32(e)), mark)
	}
	fmt.Println("(* = correct; note \"7th Heaven\" from the paper's Fig. 1d)")
}

type nameHelper struct{ g *kg.Graph }

func (n nameHelper) entity(s string) kg.EntityID {
	id, ok := n.g.Entities.ID(s)
	if !ok {
		log.Fatalf("unknown entity %q", s)
	}
	return kg.EntityID(id)
}

func (n nameHelper) relation(s string) kg.RelationID {
	id, ok := n.g.Relations.ID(s)
	if !ok {
		log.Fatalf("unknown relation %q", s)
	}
	return kg.RelationID(id)
}

// buildMovieKG constructs a small closed-world movie graph in the spirit
// of Fig. 1: directors with nationalities and awards, and the films they
// directed, plus distractor facts so ranking is non-trivial.
func buildMovieKG() (*kg.Graph, nameHelper) {
	ents, rels := kg.NewDict(), kg.NewDict()
	g := kg.NewGraph(ents, rels)

	directors := []struct {
		name     string
		american bool
		oscar    bool
		films    []string
	}{
		{"Frank Borzage", true, true, []string{"7th Heaven", "Street Angel", "Bad Girl"}},
		{"Kathryn Bigelow", true, true, []string{"The Hurt Locker", "Zero Dark Thirty"}},
		{"Damien Chazelle", true, true, []string{"La La Land", "Whiplash"}},
		{"Wes Anderson", true, false, []string{"Rushmore", "The Royal Tenenbaums"}},
		{"Sofia Coppola", true, false, []string{"Lost in Translation"}},
		{"Ang Lee", false, true, []string{"Life of Pi", "Brokeback Mountain"}},
		{"Bong Joon-ho", false, true, []string{"Parasite", "Memories of Murder"}},
		{"Denis Villeneuve", false, false, []string{"Arrival", "Dune"}},
	}

	// Relations point in the directions the computation graph traverses.
	for _, r := range []string{"awardWonBy", "nationalOf", "directed", "starsIn", "setIn"} {
		rels.Add(r)
	}
	oscar := ents.Add("Oscar")
	usa := ents.Add("USA")
	abroad := ents.Add("Elsewhere")

	add := func(h int32, r string, t int32) {
		ri, _ := rels.ID(r)
		g.AddTriple(kg.Triple{H: kg.EntityID(h), R: kg.RelationID(ri), T: kg.EntityID(t)})
	}

	actors := []int32{ents.Add("Actor A"), ents.Add("Actor B"), ents.Add("Actor C")}
	for _, d := range directors {
		di := ents.Add(d.name)
		if d.oscar {
			add(oscar, "awardWonBy", di)
		}
		if d.american {
			add(usa, "nationalOf", di)
		} else {
			add(abroad, "nationalOf", di)
		}
		for fi, f := range d.films {
			fe := ents.Add(f)
			add(di, "directed", fe)
			add(actors[fi%len(actors)], "starsIn", fe)
			if fi%2 == 0 {
				add(fe, "setIn", usa)
			}
		}
	}
	return g, nameHelper{g}
}
